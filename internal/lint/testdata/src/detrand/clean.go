// Clean-path fixtures for detrand. Any finding in this file fails the
// golden test.
package detrand

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Unreachable is nondeterministic but outside every root's call tree, so
// it is not under the byte-determinism contract.
func Unreachable() int64 {
	return time.Now().UnixNano()
}

// emitSorted is reachable from Save but uses the sanctioned
// collect-then-sort pattern: the map iteration only accumulates, and the
// emission runs over the sorted slice.
func emitSorted(w io.Writer, cells map[string]int) {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, cells[k])
	}
}
