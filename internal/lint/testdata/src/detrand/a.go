// Seeded-bad fixtures for detrand: nondeterminism reachable from a
// declared determinism root.
package detrand

//flowlint:detrand-root Save

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Save is the fixture's byte-deterministic entry point (see the
// detrand-root directive above); everything it reaches is under contract.
func Save(w io.Writer, cells map[string]int) error {
	stamp()
	emit(w, cells)
	shuffle()
	emitSorted(w, cells)
	return nil
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now inside detrand\.stamp, which is reachable from a determinism root`
}

func emit(w io.Writer, cells map[string]int) {
	for k, v := range cells { // want `map iteration emitted via call to Fprintf inside detrand\.emit`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func shuffle() int {
	return rand.Intn(10) // want `math/rand\.Intn inside detrand\.shuffle`
}
