package mapdet

import (
	"fmt"
	"sort"
	"strings"
)

func encodeLoop(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d;", k, v) // want `call to fmt\.Fprintf inside range over map`
	}
}

func writeLoop(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `call to WriteString inside range over map`
	}
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `slice out is built in map iteration order and later returned`
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation over map iteration`
	}
	return total
}

// count folds an order-independent integer and must not be flagged.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// localOnly builds a slice that never escapes; order cannot be observed.
func localOnly(m map[string]int) int {
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	return len(tmp)
}
