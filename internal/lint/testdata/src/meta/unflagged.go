package meta

// eq trips floatcmp but carries no want annotation, so the harness must
// report an unexpected finding.
func eq(a, b float64) bool {
	return a == b
}
