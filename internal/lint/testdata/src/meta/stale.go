// Package meta is the harness's own fixture: one stale want annotation and
// one unannotated finding. The linttest meta-test asserts that Check
// reports both mismatches — a fixture harness that cannot fail proves
// nothing about the analyzers it runs.
package meta

func add(a, b int) int {
	return a + b // want `this finding is never produced`
}
