package core

// build.go is on the analyzer's allowlist: the build phase may mutate.

func populate(c *Cube, cell *Cell) {
	c.Cuboids = map[string]*Cuboid{}
	cell.Count = 42
	delete(c.Cuboids, "k")
}
