// Test fixture: the package is named core and declares Cube/Cuboid/Cell so
// the analyzer's type matching engages without importing the real module.
package core

type Cell struct {
	Count  int64
	Values []int32
}

type Cuboid struct {
	Cells map[string]*Cell
}

type Cube struct {
	Cuboids map[string]*Cuboid
}

func mutate(c *Cube, cb *Cuboid, cell *Cell) {
	cell.Count = 7         // want `write to core\.Cell field Count`
	cell.Count++           // want `write to core\.Cell field Count`
	cb.Cells["k"] = cell   // want `write to core\.Cuboid field Cells`
	cell.Values[0] = 3     // want `write to core\.Cell field Values`
	delete(c.Cuboids, "k") // want `delete from core\.Cube field Cuboids`
}

func read(c *Cube) int64 {
	var n int64
	for _, cb := range c.Cuboids {
		for _, cell := range cb.Cells {
			n += cell.Count
		}
	}
	return n
}

func suppressed(cell *Cell) {
	cell.Count = 0 //flowlint:ignore immutcube fixture exercising suppression
}
