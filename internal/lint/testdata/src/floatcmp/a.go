package floatcmp

// Unknown mimics core.SimilarityUnknown: an assigned-never-computed
// sentinel, compared exactly by contract.
const Unknown = -1.0

func bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func badNeq(a float64) bool {
	return a != 0.5 // want `floating-point != comparison`
}

func sentinel(a float64) bool {
	return a == Unknown // named constant: exact equality is its contract
}

func zeroGuard(a float64) bool {
	return a == 0 // literal zero: "never touched" test, well-defined
}

func ints(a, b int) bool {
	return a == b // not a float
}
