// Seeded-bad fixtures for lockblock: mutexes held across calls whose
// blocking the fact table proves, including across package boundaries.
package lockblock

import (
	"sync"

	"flowcube/internal/lint/testdata/lockblock/dep"
)

type cache struct {
	mu sync.Mutex
}

// refresh holds the lock across a call whose blocking lives in another
// package — invisible to any per-file analysis, proven by the facts.
func (c *cache) refresh(url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return dep.Fetch(url) // want `call to flowcube/internal/lint/testdata/lockblock/dep\.Fetch \(blocks: net; net/http\.Get\) while holding c\.mu`
}

// slowLocal parks on a channel; same-package facts classify it too.
func slowLocal(ch chan int) int {
	return <-ch
}

func (c *cache) refreshLocal(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return slowLocal(ch) // want `call to flowcube/internal/lint/testdata/lockblock\.slowLocal \(blocks: chan; channel receive\) while holding c\.mu`
}
