// Package dep is the cross-package half of the lockblock fixture: the
// blocking call lives here, two hops from the lock that is held across it.
package dep

import "net/http"

// Fetch blocks on the network; its fact says blocks: net.
func Fetch(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Quick is CPU-only; its fact says blocks: none.
func Quick() int {
	return 1
}
