// Clean-path fixtures for lockblock. Any finding in this file fails the
// golden test.
package lockblock

import (
	"sync"

	"flowcube/internal/lint/testdata/lockblock/dep"
)

type registry struct {
	mu sync.Mutex
	n  int
}

// released drops the lock before the blocking call.
func (r *registry) released(url string) error {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	return dep.Fetch(url)
}

// quick holds the lock across a non-blocking callee only.
func (r *registry) quick() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return dep.Quick()
}

// pinned documents a deliberate hold-across-blocking with the suppression
// directive the production allowlist uses; the reason is mandatory.
func (r *registry) pinned(url string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	//flowlint:ignore lockblock deliberate single-flight: concurrent refreshes must queue here
	return dep.Fetch(url)
}
