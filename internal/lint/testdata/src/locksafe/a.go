package locksafe

import (
	"net/http"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) byValue() int { // want `value receiver of byValue passes a lock by value`
	return g.n
}

func take(g guarded) int { // want `value parameter of take passes a lock by value`
	return g.n
}

func takePtr(g *guarded) int { // pointers are fine
	return g.n
}

type server struct {
	mu sync.Mutex
}

func (s *server) slow() {
	s.mu.Lock()
	time.Sleep(time.Second) // want `blocking call time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

func (s *server) released() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Second)
}

func (s *server) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = http.Get("http://example.invalid") // want `blocking call net/http\.Get while holding s\.mu`
}

func (s *server) branchScoped(cond bool) {
	if cond {
		s.mu.Lock()
		s.mu.Unlock()
	}
	time.Sleep(time.Second) // lock taken in the branch does not leak here
}
