// Seeded-bad fixtures for ctxflow: uncancellable exported surfaces, stray
// context.Background, and contexts stored in struct fields.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

func FetchAll(url string) error { // want `exported FetchAll blocks \(net; net/http\.Get\) but neither takes nor derives a context\.Context`
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func SleepyRetry() { // want `exported SleepyRetry blocks \(sleep; time\.Sleep\) but neither takes nor derives a context\.Context`
	time.Sleep(time.Second)
}

// internalSleep is unexported: not a surface, never flagged directly.
func internalSleep() {
	time.Sleep(time.Second)
}

func Transitive() { // want `exported Transitive blocks \(sleep; calls flowcube/internal/lint/testdata/ctxflow\.internalSleep\) but neither takes nor derives`
	internalSleep()
}

func detach() context.Context {
	return context.Background() // want `context\.Background outside package main detaches work`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO outside package main detaches work`
}

type job struct {
	ctx context.Context // want `struct job stores a context\.Context in a field`
	id  int
}
