// Clean-path fixtures for ctxflow: every exemption the analyzer grants.
// Any finding in this file fails the golden test.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// FetchCtx blocks on the network but accepts a context: exempt.
func FetchCtx(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Handler blocks but carries a *http.Request, whose Context travels with
// it: exempt.
func Handler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond)
}

// Join blocks on a channel, not the outside world: CPU-parallel joins
// complete on their own and are exempt from the ctx requirement.
func Join(ch chan int) int {
	return <-ch
}

// LoadContext is the cancellable primitive...
func LoadContext(ctx context.Context, url string) error {
	return FetchCtx(ctx, url)
}

// ...and Load is the sanctioned context-less convenience wrapper: a
// single-statement forward to a Context-suffixed sibling. Its
// context.Background is the one place outside main the call is allowed.
func Load(url string) error {
	return LoadContext(context.Background(), url)
}

// Quick does not block at all: exempt.
func Quick(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

type worker struct {
	id int // a context-free struct stays silent
}
