package errpath

import (
	"fmt"
	"io"
	"os"
	"strings"
)

func bad(path string) {
	f, _ := os.Create(path)
	f.Close()           // want `error result of File\.Close is silently discarded`
	fmt.Fprintf(f, "x") // want `error result of fmt\.Fprintf is silently discarded`
}

func deferred(f *os.File) {
	defer f.Close() // want `error result of File\.Close is silently discarded`
}

func explicit(f *os.File) {
	_ = f.Close() // explicit discard is visible and legal
}

func benign() {
	var b strings.Builder
	b.WriteString("x")          // strings.Builder never fails
	fmt.Fprintf(&b, "x")        // in-memory sink
	fmt.Fprintln(os.Stderr, "") // standard stream
	fmt.Println("x")            // terminal chatter
}

func report(w io.Writer) {
	fmt.Fprintln(w, "ok") // interface destination: report-rendering convention
}

func suppressed(f *os.File) {
	f.Close() //nolint:errcheck
}
