// Seeded-bad fixtures for goroleak: goroutines that can block forever with
// no escape.
package goroleak

import "net/http"

func leakyRecv(ch chan int) {
	go func() { // want `goroutine can block forever on a channel receive`
		<-ch
	}()
}

func leakySend(ch chan int) {
	go func() { // want `goroutine can block forever on a channel send`
		ch <- 1
	}()
}

func leakyRange(ch chan int) {
	go func() { // want `goroutine can block forever on a channel range`
		for range ch {
		}
	}()
}

func leakyNetCall() {
	go func() { // want `goroutine can block forever on net/http\.Get`
		resp, err := http.Get("http://example.invalid")
		if err == nil {
			resp.Body.Close()
		}
	}()
}

// blockingWorker parks on its channel; its fact says blocks: chan.
func blockingWorker(ch chan int) {
	<-ch
}

func leakyNamedSpawn(ch chan int) {
	go blockingWorker(ch) // want `spawns flowcube/internal/lint/testdata/goroleak\.blockingWorker, which blocks \(chan\)`
}

func leakyUnbufferedResult(ch chan int) {
	done := make(chan error)
	go func() { // want `goroutine can block forever on a channel send`
		done <- nil
	}()
	<-done
	_ = ch
}
