// Clean-path fixtures for goroleak: every spawn here has its lifetime
// bounded, so any finding in this file fails the golden test.
package goroleak

import (
	"context"
	"net"
	"net/http"
	"sync"
)

func okCtxSelect(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case <-ch:
		}
	}()
}

func okCancellableCall(ctx context.Context, urls []string) {
	for range urls {
		go func() {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid", nil)
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
}

func okWaitGroup(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
}

func okBufferedSend() {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	<-errc
}

// okAsyncResult is the sanctioned server-accept shape: the blocking call's
// result goes straight to a buffered channel, so the goroutine cannot
// outlive the call and its completion is observable.
func okAsyncResult(srv *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return <-errc
}

func okPollingSelect(ch chan int) {
	go func() {
		select {
		case <-ch:
		default:
		}
	}()
}

// ctxWorker blocks but takes a context; spawning it with a ctx argument
// hands it a lifetime.
func ctxWorker(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

func okNamedSpawn(ctx context.Context, ch chan int) {
	go ctxWorker(ctx, ch)
}

func okNonBlockingSpawn() {
	go func() {
		_ = 1 + 1
	}()
}
