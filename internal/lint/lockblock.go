package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// lockblock is the interprocedural upgrade of locksafe's held-region check:
// a sync.Mutex/RWMutex held across a call into *any* function whose
// cross-package fact says it blocks — not just the syntactic stdlib I/O
// locksafe can see in the same body. This is the analyzer the cluster era
// needs: the dangerous pattern after sharding is a serving-layer lock held
// across a call into internal/incr or internal/core whose blocking lives
// two packages away (a WaitGroup join inside the parallel codec, a channel
// handoff inside the counting core), where no per-file analysis can see it.
//
// Division of labor with locksafe: locksafe reports direct stdlib blocking
// calls (net, net/http, os, os/exec, time.Sleep) and lock-by-value copies;
// lockblock reports only module-internal calls classified blocking by the
// fact table, so the two never double-report one call. With facts disabled
// (Pass.Facts == nil) lockblock reports nothing — the acceptance test for
// cross-package facts is exactly that a finding whose blocking call lives
// in another package appears with facts and disappears without them.

// LockBlock flags mutexes held across module-internal calls that block per
// the cross-package fact table.
var LockBlock = &Analyzer{
	Name: "lockblock",
	Doc:  "flags sync.Mutex/RWMutex held across calls whose cross-package facts say they block",
	Run:  runLockBlock,
}

func runLockBlock(pass *Pass) []Diagnostic {
	if pass.Facts == nil {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				diags = append(diags, newFactLockScan(pass).block(body, newHeldSet())...)
			}
			return true
		})
	}
	return diags
}

// newFactLockScan builds the held-region scanner with the facts classifier.
func newFactLockScan(pass *Pass) *lockScan {
	s := &lockScan{pass: pass}
	s.classify = func(call *ast.CallExpr) (string, bool) {
		obj := calleeObj(pass.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		// Direct stdlib blocking is locksafe's report; never double up.
		if class, _ := stdlibBlockClass(obj.Pkg().Path(), obj.Name()); class != 0 {
			return "", false
		}
		fobj, ok := obj.(*types.Func)
		if !ok {
			return "", false
		}
		fact := pass.Facts.Lookup(fobj)
		if fact == nil || fact.Blocks == 0 {
			return "", false
		}
		return fmt.Sprintf("%s (blocks: %s; %s)", fact.Key, fact.Blocks, fact.BlockedBy), true
	}
	s.format = func(name, lock string) string {
		return fmt.Sprintf("call to %s while holding %s; the callee can block, so every waiter on the lock stalls with it — release the lock first",
			name, lock)
	}
	return s
}
