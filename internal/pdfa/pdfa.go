// Package pdfa implements ALERGIA-style probabilistic deterministic finite
// automaton induction over location paths (Carrasco & Oncina 1994; Thollard
// et al. 2000 — the grammar-induction line the paper's related work §7
// contrasts flowgraphs with).
//
// The learner builds a prefix-tree acceptor from the paths' location
// sequences and greedily merges states whose outgoing behaviour —
// termination frequency and per-symbol transition frequencies, recursively
// — is compatible under a Hoeffding bound with parameter alpha. The result
// is a compact PDFA that generalizes across branches, unlike the flowgraph,
// which keeps one node per path prefix and instead models durations and
// exceptions. The package exists to reproduce that comparison: see the
// cross-model tests and the flowgraph-vs-PDFA example benchmarks.
package pdfa

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// State is one automaton state.
type State struct {
	id int
	// terminations counts strings ending at this state.
	terminations int64
	// arrivals counts strings passing through or ending at this state.
	arrivals int64
	// next maps a location symbol to the successor state.
	next map[hierarchy.NodeID]*State
	// counts maps a location symbol to the number of strings taking it.
	counts map[hierarchy.NodeID]int64
	// merged points to the representative after a merge (union-find).
	merged *State
}

func (s *State) find() *State {
	for s.merged != nil {
		s = s.merged
	}
	return s
}

// ID reports a stable identifier for the state (post-learning).
func (s *State) ID() int { return s.id }

// TerminationProb is the probability a string ends at this state.
func (s *State) TerminationProb() float64 {
	if s.arrivals == 0 {
		return 0
	}
	return float64(s.terminations) / float64(s.arrivals)
}

// TransitionProb is the probability of emitting symbol l at this state.
func (s *State) TransitionProb(l hierarchy.NodeID) float64 {
	if s.arrivals == 0 {
		return 0
	}
	return float64(s.counts[l]) / float64(s.arrivals)
}

// Automaton is a learned PDFA.
type Automaton struct {
	start  *State
	states []*State
	alpha  float64
}

// Options configures learning.
type Options struct {
	// Alpha is the Hoeffding-test significance in [0, 1). Because the
	// Hoeffding bound is bounded away from zero for finite samples,
	// low-frequency states always test compatible; Alpha = 0 therefore
	// has the special meaning "never merge", yielding the frequency
	// prefix-tree acceptor. The ALERGIA literature uses values around
	// 0.05–0.7; smaller alpha widens the bound and merges more.
	Alpha float64
}

// Learn induces a PDFA from the location sequences of the given paths.
func Learn(paths []pathdb.Path, opts Options) (*Automaton, error) {
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("pdfa: alpha must be in [0,1), got %g", opts.Alpha)
	}
	a := &Automaton{alpha: opts.Alpha}
	a.start = a.newState()

	// 1. Prefix-tree acceptor with frequencies.
	for _, p := range paths {
		cur := a.start
		cur.arrivals++
		for _, st := range p {
			l := st.Location
			cur.counts[l]++
			nxt := cur.next[l]
			if nxt == nil {
				nxt = a.newState()
				cur.next[l] = nxt
			}
			nxt.arrivals++
			cur = nxt
		}
		cur.terminations++
	}

	// 2. ALERGIA merge loop: consider states in breadth-first (lexico-
	// graphic) order; try to merge each candidate into an earlier (red)
	// state; otherwise promote it. Alpha = 0 skips merging entirely.
	if a.alpha == 0 {
		a.finalize()
		return a, nil
	}
	red := []*State{a.start}
	blue := a.successors(a.start, nil)
	for len(blue) > 0 {
		cand := blue[0].find()
		blue = blue[1:]
		if cand.isRedIn(red) {
			continue
		}
		mergedInto := (*State)(nil)
		for _, r := range red {
			if a.compatible(r.find(), cand, a.alpha) {
				mergedInto = r.find()
				break
			}
		}
		if mergedInto != nil {
			a.merge(mergedInto, cand)
		} else {
			red = append(red, cand)
			blue = append(blue, a.successors(cand, red)...)
		}
	}

	// 3. Collapse the union-find into a clean state list.
	a.finalize()
	return a, nil
}

func (a *Automaton) newState() *State {
	s := &State{
		id:     len(a.states),
		next:   make(map[hierarchy.NodeID]*State),
		counts: make(map[hierarchy.NodeID]int64),
	}
	a.states = append(a.states, s)
	return s
}

func (s *State) isRedIn(red []*State) bool {
	f := s.find()
	for _, r := range red {
		if r.find() == f {
			return true
		}
	}
	return false
}

func (a *Automaton) successors(s *State, red []*State) []*State {
	s = s.find()
	syms := make([]hierarchy.NodeID, 0, len(s.next))
	for l := range s.next {
		syms = append(syms, l)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	var out []*State
	for _, l := range syms {
		n := s.next[l].find()
		if red == nil || !n.isRedIn(red) {
			out = append(out, n)
		}
	}
	return out
}

// hoeffdingDiffer reports whether two frequencies are incompatible at
// significance alpha.
func hoeffdingDiffer(f1, n1, f2, n2 int64, alpha float64) bool {
	if n1 == 0 || n2 == 0 {
		return false
	}
	p1 := float64(f1) / float64(n1)
	p2 := float64(f2) / float64(n2)
	bound := math.Sqrt(0.5*math.Log(2/alpha)) * (1/math.Sqrt(float64(n1)) + 1/math.Sqrt(float64(n2)))
	return math.Abs(p1-p2) > bound
}

// compatible recursively tests ALERGIA compatibility of two states.
func (a *Automaton) compatible(x, y *State, alpha float64) bool {
	return a.compatibleRec(x.find(), y.find(), alpha, make(map[[2]int]bool))
}

func (a *Automaton) compatibleRec(x, y *State, alpha float64, seen map[[2]int]bool) bool {
	if x == y {
		return true
	}
	key := [2]int{x.id, y.id}
	if seen[key] {
		return true // already being compared higher in the recursion
	}
	seen[key] = true
	if hoeffdingDiffer(x.terminations, x.arrivals, y.terminations, y.arrivals, alpha) {
		return false
	}
	syms := map[hierarchy.NodeID]bool{}
	for l := range x.counts {
		syms[l] = true
	}
	for l := range y.counts {
		syms[l] = true
	}
	for l := range syms {
		if hoeffdingDiffer(x.counts[l], x.arrivals, y.counts[l], y.arrivals, alpha) {
			return false
		}
		nx, ny := x.next[l], y.next[l]
		if nx != nil && ny != nil {
			if !a.compatibleRec(nx.find(), ny.find(), alpha, seen) {
				return false
			}
		}
	}
	return true
}

// merge folds y into x, recursively folding successors (determinization).
func (a *Automaton) merge(x, y *State) {
	x, y = x.find(), y.find()
	if x == y {
		return
	}
	y.merged = x
	x.arrivals += y.arrivals
	x.terminations += y.terminations
	for l, n := range y.counts {
		x.counts[l] += n
	}
	for l, yn := range y.next {
		if xn, ok := x.next[l]; ok {
			a.merge(xn.find(), yn.find())
		} else {
			x.next[l] = yn.find()
		}
	}
	y.next = nil
	y.counts = nil
}

// finalize rewrites all transitions through the union-find and compacts
// the state list to reachable representatives.
func (a *Automaton) finalize() {
	a.start = a.start.find()
	var order []*State
	seen := map[*State]bool{}
	var visit func(s *State)
	visit = func(s *State) {
		s = s.find()
		if seen[s] {
			return
		}
		seen[s] = true
		order = append(order, s)
		syms := make([]hierarchy.NodeID, 0, len(s.next))
		for l := range s.next {
			syms = append(syms, l)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, l := range syms {
			s.next[l] = s.next[l].find()
			visit(s.next[l])
		}
	}
	visit(a.start)
	for i, s := range order {
		s.id = i
	}
	a.states = order
}

// Start returns the initial state.
func (a *Automaton) Start() *State { return a.start }

// NumStates reports the automaton size after merging.
func (a *Automaton) NumStates() int { return len(a.states) }

// States returns the reachable states in visit order.
func (a *Automaton) States() []*State { return a.states }

// PathProb returns the probability the PDFA assigns to a path's location
// sequence (durations are outside the model).
func (a *Automaton) PathProb(p pathdb.Path) float64 {
	cur := a.start
	prob := 1.0
	for _, st := range p {
		prob *= cur.TransitionProb(st.Location)
		nxt := cur.next[st.Location]
		if nxt == nil || prob == 0 {
			return 0
		}
		cur = nxt
	}
	return prob * cur.TerminationProb()
}

// String renders the automaton as one line per state.
func (a *Automaton) String(loc *hierarchy.Hierarchy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pdfa (%d states)\n", len(a.states))
	for _, s := range a.states {
		fmt.Fprintf(&b, "  q%d term=%.2f", s.id, s.TerminationProb())
		syms := make([]hierarchy.NodeID, 0, len(s.next))
		for l := range s.next {
			syms = append(syms, l)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, l := range syms {
			fmt.Fprintf(&b, " %s:%.2f→q%d", loc.Name(l), s.TransitionProb(l), s.next[l].id)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
