package pdfa_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"flowcube/internal/datagen"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/pdfa"
)

func basePaths(ex *paperex.Example) []pathdb.Path {
	out := make([]pathdb.Path, 0, ex.DB.Len())
	for _, r := range ex.DB.Records {
		out = append(out, r.Path)
	}
	return out
}

func TestLearnValidation(t *testing.T) {
	for _, alpha := range []float64{1, -0.2, 3} {
		if _, err := pdfa.Learn(nil, pdfa.Options{Alpha: alpha}); err == nil {
			t.Errorf("alpha=%g accepted", alpha)
		}
	}
}

func TestPrefixTreeWithoutMerging(t *testing.T) {
	// Alpha 0 disables merging: the automaton is the frequency prefix-tree
	// acceptor and path probabilities are the empirical route frequencies.
	ex := paperex.New()
	paths := basePaths(ex)
	a, err := pdfa.Learn(paths, pdfa.Options{Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Route f,d,t,s,c occurs 3/8 times.
	p := a.PathProb(paths[0])
	if math.Abs(p-3.0/8) > 1e-9 {
		t.Errorf("P(route 1) = %g, want 0.375", p)
	}
	// A route never seen gets probability 0.
	alien := pathdb.Path{{Location: ex.Location.MustLookup("c"), Duration: 0}}
	if a.PathProb(alien) != 0 {
		t.Errorf("unseen route got positive probability")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	for _, alpha := range []float64{0, 0.5, 0.05} {
		a, err := pdfa.Learn(paths, pdfa.Options{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		// Sum P over distinct observed routes must be <= 1 + eps, and for
		// the unmerged tree exactly the route frequencies (sum 1).
		seen := map[string]bool{}
		sum := 0.0
		for _, p := range paths {
			key := ""
			for _, st := range p {
				key += string(rune(st.Location)) + ","
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			sum += a.PathProb(p)
		}
		if sum > 1+1e-9 {
			t.Errorf("alpha=%g: observed-route mass %g > 1", alpha, sum)
		}
		if alpha == 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%g: unmerged tree mass %g != 1", alpha, sum)
		}
	}
}

func TestMergingCompresses(t *testing.T) {
	// Data drawn from a true 2-state process: strings a^n b, n >= 1, with
	// geometric n. ALERGIA should merge the a-chain into few states.
	loc := hierarchy.New("loc")
	aSym := loc.MustAddPath("a")
	bSym := loc.MustAddPath("b")
	rng := rand.New(rand.NewSource(5))
	var paths []pathdb.Path
	for i := 0; i < 2000; i++ {
		// True geometric lengths: after each a, continue with prob 0.75,
		// so every chain state has the same outgoing behaviour and
		// ALERGIA can merge them into a loop.
		n := 1
		for rng.Float64() < 0.75 && n < 40 {
			n++
		}
		var p pathdb.Path
		for j := 0; j < n; j++ {
			p = append(p, pathdb.Stage{Location: aSym, Duration: 1})
		}
		p = append(p, pathdb.Stage{Location: bSym, Duration: 1})
		paths = append(paths, p)
	}
	strict, err := pdfa.Learn(paths, pdfa.Options{Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := pdfa.Learn(paths, pdfa.Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NumStates() >= strict.NumStates() {
		t.Errorf("merging did not compress: %d vs %d states", loose.NumStates(), strict.NumStates())
	}
	// The merged automaton can generalize: chains are capped at 40 in the
	// training data, so a^45 b was never seen — yet the learned loop
	// assigns it positive probability.
	var long pathdb.Path
	for j := 0; j < 45; j++ {
		long = append(long, pathdb.Stage{Location: aSym, Duration: 1})
	}
	long = append(long, pathdb.Stage{Location: bSym, Duration: 1})
	if loose.PathProb(long) <= 0 {
		t.Errorf("merged PDFA does not generalize to a^45 b")
	}
	if strict.PathProb(long) != 0 {
		t.Errorf("unmerged tree should not generalize")
	}
}

// TestAgreesWithFlowgraphOnRoutes: on route probabilities the unmerged
// PDFA and the flowgraph induce the same distribution (the flowgraph also
// models durations, which the PDFA ignores) — the §7 comparison.
func TestAgreesWithFlowgraphOnRoutes(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 500
	cfg.NumSequences = 10
	ds := datagen.MustGenerate(cfg)
	var paths []pathdb.Path
	for _, r := range ds.DB.Records {
		paths = append(paths, r.Path)
	}
	level := pathdb.PathLevel{
		Cut: hierarchy.LevelCut(ds.Schema.Location, ds.Schema.Location.Depth()),
		// Durations out of the comparison: the PDFA has no duration model.
		Time: pathdb.TimeAny,
	}
	g := flowgraph.Build(ds.Schema.Location, level, paths, nil)
	a, err := pdfa.Learn(paths, pdfa.Options{Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		if i >= 100 {
			break
		}
		// Flowgraph route probability: marginalize durations by querying
		// at the TimeAny level where every duration is 0 with prob 1.
		fg := g.PathProb(p)
		pd := a.PathProb(p)
		if math.Abs(fg-pd) > 1e-9 {
			t.Fatalf("path %d: flowgraph %g vs pdfa %g", i, fg, pd)
		}
	}
}

func TestStringRendering(t *testing.T) {
	ex := paperex.New()
	a, err := pdfa.Learn(basePaths(ex), pdfa.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := a.String(ex.Location)
	if !strings.Contains(s, "pdfa (") || !strings.Contains(s, "q0") {
		t.Errorf("rendering unexpected:\n%s", s)
	}
	if a.Start().ID() != 0 {
		t.Errorf("start state id = %d", a.Start().ID())
	}
	if len(a.States()) != a.NumStates() {
		t.Errorf("state accounting inconsistent")
	}
}
