package core

// Horizontal partitioning support (see internal/cluster and DESIGN.md §10):
// carving one materialized cube into per-shard cubes along cell-value
// boundaries, re-assembling shards into the original cube, and loading just
// a snapshot's metadata prefix so a stateless router can validate and route
// without holding any cells.
//
// This file is on the immutcube allowlist for the same reason delta.go is:
// every cube mutated here is freshly constructed and not yet shared with
// any reader.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"

	"flowcube/internal/hierarchy"
)

// FilterCells returns a new cube holding exactly the cells (and sub-δ
// ledger entries) whose per-dimension values satisfy keep. Every cuboid of
// the original stays materialized — possibly empty — and every ledger item
// level stays present, so a set of complementary filters partitions the
// cube: Merge over cubes filtered by disjoint, exhaustive predicates
// reproduces the original cell-for-cell, and their snapshots carry the same
// section census.
//
// The result shares the schema, symbols, and *Cell pointers with the
// receiver, so it is cheap but must be treated as read-only alongside it —
// the same contract a serving snapshot already has (mutating paths like
// incr.ApplyDelta clone first). The mining result is dropped: it describes
// the whole build, not the kept subset.
func (c *Cube) FilterCells(keep func(values []hierarchy.NodeID) bool) *Cube {
	if c.lazy != nil {
		// Filtering needs every cell in hand: materialize the lazy cube
		// first (a decode failure yields an empty filtered cube, with the
		// error recorded for LazyErr).
		full, err := c.lazy.materialize(c)
		if err != nil {
			c.lazy.noteErr(err)
			full = c.Clone() // empty skeleton; Clone already recorded the error
		}
		c = full
	}
	out := &Cube{
		Schema:   c.Schema,
		Config:   c.Config,
		Symbols:  c.Symbols,
		Cuboids:  make(map[string]*Cuboid, len(c.Cuboids)),
		minCount: c.minCount,
		appended: c.appended,
	}
	for key, cb := range c.Cuboids {
		ncb := &Cuboid{Spec: cb.Spec, Cells: make(map[string]*Cell)}
		for ck, cell := range cb.Cells {
			if keep(cell.Values) {
				ncb.Cells[ck] = cell
			}
		}
		out.Cuboids[key] = ncb
	}
	if c.ledger != nil {
		out.ledger = NewLedger()
		for key, lv := range c.ledger.levels {
			nlv := &ledgerLevel{item: lv.item, entries: make(map[string]*ledgerEntry)}
			for ck, e := range lv.entries {
				if keep(e.values) {
					nlv.entries[ck] = e
				}
			}
			out.ledger.levels[key] = nlv
		}
	}
	return out
}

// Merge re-assembles cubes produced by complementary FilterCells calls (or
// loaded from the per-shard snapshots internal/cluster writes) into one
// cube. The shards must agree on thresholds, schema shape, and cuboid
// census, and no cell or ledger entry may appear in more than one shard;
// violations report which shard disagrees. The merged cube takes the first
// shard's schema and symbols and shares cell pointers with its inputs.
func Merge(shards []*Cube) (*Cube, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: merge of zero shards")
	}
	copied := false
	for i, s := range shards {
		if s.lazy == nil {
			continue
		}
		// Merging walks every shard's cell maps: lazily loaded shards are
		// materialized first (into a copy — the input slice is not mutated).
		full, err := s.lazy.materialize(s)
		if err != nil {
			return nil, fmt.Errorf("core: merge shard %d: %w", i, err)
		}
		if !copied {
			shards = append([]*Cube(nil), shards...)
			copied = true
		}
		shards[i] = full
	}
	first := shards[0]
	out := &Cube{
		Schema:   first.Schema,
		Config:   first.Config,
		Symbols:  first.Symbols,
		Cuboids:  make(map[string]*Cuboid, len(first.Cuboids)),
		minCount: first.minCount,
		appended: first.appended,
	}
	for i, s := range shards {
		if err := compatibleShard(first, s); err != nil {
			return nil, fmt.Errorf("core: merge shard %d: %w", i, err)
		}
		for key, cb := range s.Cuboids {
			ncb := out.Cuboids[key]
			if ncb == nil {
				ncb = &Cuboid{Spec: cb.Spec, Cells: make(map[string]*Cell, len(cb.Cells))}
				out.Cuboids[key] = ncb
			}
			for ck, cell := range cb.Cells {
				if _, dup := ncb.Cells[ck]; dup {
					return nil, fmt.Errorf("core: merge shard %d: cell %s of cuboid %s already merged from an earlier shard", i, ck, key)
				}
				ncb.Cells[ck] = cell
			}
		}
		if s.ledger == nil {
			continue
		}
		if out.ledger == nil {
			out.ledger = NewLedger()
		}
		for key, lv := range s.ledger.levels {
			nlv := out.ledger.levels[key]
			if nlv == nil {
				nlv = &ledgerLevel{item: lv.item, entries: make(map[string]*ledgerEntry, len(lv.entries))}
				out.ledger.levels[key] = nlv
			}
			for ck, e := range lv.entries {
				if _, dup := nlv.entries[ck]; dup {
					return nil, fmt.Errorf("core: merge shard %d: ledger entry %s at level %s already merged from an earlier shard", i, ck, key)
				}
				nlv.entries[ck] = e
			}
		}
	}
	return out, nil
}

// compatibleShard checks that b describes the same cube as a: same
// thresholds (floats compared by bit pattern — shards come from the same
// writer, so byte-equality is the contract), same dimension names and
// sizes, same path levels, and the same materialized cuboid census.
func compatibleShard(a, b *Cube) error {
	if a.minCount != b.minCount {
		return fmt.Errorf("min count %d, want %d", b.minCount, a.minCount)
	}
	if math.Float64bits(a.Config.Epsilon) != math.Float64bits(b.Config.Epsilon) {
		return fmt.Errorf("epsilon %v, want %v", b.Config.Epsilon, a.Config.Epsilon)
	}
	if math.Float64bits(a.Config.Tau) != math.Float64bits(b.Config.Tau) {
		return fmt.Errorf("tau %v, want %v", b.Config.Tau, a.Config.Tau)
	}
	if len(a.Schema.Dims) != len(b.Schema.Dims) {
		return fmt.Errorf("%d dimensions, want %d", len(b.Schema.Dims), len(a.Schema.Dims))
	}
	for d := range a.Schema.Dims {
		ah, bh := a.Schema.Dims[d], b.Schema.Dims[d]
		if ah.Dimension() != bh.Dimension() || ah.Len() != bh.Len() {
			return fmt.Errorf("dimension %d is %s (%d concepts), want %s (%d concepts)",
				d, bh.Dimension(), bh.Len(), ah.Dimension(), ah.Len())
		}
	}
	if la, lb := len(a.Symbols.PathLevels()), len(b.Symbols.PathLevels()); la != lb {
		return fmt.Errorf("%d path levels, want %d", lb, la)
	}
	if len(a.Cuboids) != len(b.Cuboids) {
		return fmt.Errorf("%d cuboids, want %d", len(b.Cuboids), len(a.Cuboids))
	}
	for key := range a.Cuboids {
		if _, ok := b.Cuboids[key]; !ok {
			return fmt.Errorf("missing cuboid %s", key)
		}
	}
	return nil
}

// LoadMeta reads only a snapshot's metadata — thresholds, schema
// hierarchies, and the encoding plan — returning a cube with no
// materialized cells. For v2 snapshots this stops after the plan section
// without touching the (arbitrarily large) cuboid sections; v1 snapshots
// are fully decoded and then stripped. The result answers Schema, Symbols,
// MinCount, ParseCellSpec-style lookups, and Config thresholds; NumCells is
// 0 and queries find nothing.
func LoadMeta(r io.Reader) (*Cube, error) {
	return LoadMetaContext(context.Background(), r)
}

// LoadMetaContext is LoadMeta with cancellation: ctx is checked between
// preamble sections, so probing a snapshot on a slow reader can be
// abandoned.
func LoadMetaContext(ctx context.Context, r io.Reader) (*Cube, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(magicV2))
	if err == nil && string(magic) == magicV2 {
		p, err := loadPreambleV2(ctx, br)
		if err != nil {
			return nil, err
		}
		return p.cube(), nil
	}
	cube, err := loadV1(br)
	if err != nil {
		return nil, err
	}
	cube.Cuboids = make(map[string]*Cuboid)
	cube.ledger = nil
	cube.Config.DeltaLedger = false
	return cube, nil
}
