package core

import (
	"context"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

// Redundancy (paper §4.3, Definition 4.4) and querying with roll-up
// inference: a cell whose flowgraph is similar (ϕ > τ) to every parent cell
// in the item lattice — at the same path level — adds no information; a
// non-redundant flowcube drops it and answers queries from the parent.

// CellRef names a cell by cuboid spec and per-dimension values without
// requiring it to be materialized.
type CellRef struct {
	Spec   CuboidSpec
	Values []hierarchy.NodeID
}

// ParentRefs enumerates the item-lattice parents of a cell: for each
// dimension at a non-'*' level, the cell with that dimension generalized to
// the previous materialized level (or '*'). Delta maintenance uses it to
// find the redundancy frontier of a touched cell (DESIGN.md §9).
func (c *Cube) ParentRefs(spec CuboidSpec, values []hierarchy.NodeID) []CellRef {
	type ref = CellRef
	var out []ref
	dimLevels := c.Symbols.DimLevels()
	for d, l := range spec.Item {
		if l == 0 {
			continue
		}
		prev := 0
		for _, ml := range dimLevels[d] {
			if ml >= l {
				break
			}
			prev = ml
		}
		pItem := append(ItemLevel(nil), spec.Item...)
		pItem[d] = prev
		pValues := append([]hierarchy.NodeID(nil), values...)
		if prev == 0 {
			pValues[d] = hierarchy.Root
		} else {
			pValues[d] = c.Schema.Dims[d].AncestorAt(values[d], prev)
		}
		out = append(out, ref{Spec: CuboidSpec{Item: pItem, PathLevel: spec.PathLevel}, Values: pValues})
	}
	return out
}

// MarkRedundancy walks every materialized cell and sets Cell.Redundant when
// the cell's flowgraph is τ-similar to all of its materialized item-lattice
// parents (and at least one parent exists). It records the weakest parent
// similarity in Cell.Similarity and returns the number of redundant cells.
// Cells with no materialized parents (the apex, or partially materialized
// lattices) are left at SimilarityUnknown rather than a fabricated ϕ = 1,
// which would read as "maximally redundant" in summaries and persisted
// output.
//
// Like every mutator, it must not run on a lazily loaded cube (whose
// Cuboids map is empty — the walk would be a silent no-op); Materialize
// first.
func (c *Cube) MarkRedundancy(tau float64) int {
	n := 0
	for _, cb := range c.Cuboids {
		for _, cell := range cb.Cells {
			if c.MarkCellRedundancy(cb.Spec, cell, tau) {
				n++
			}
		}
	}
	return n
}

// MarkCellRedundancy recomputes one cell's redundancy marking against its
// currently materialized item-lattice parents and reports whether the cell
// is redundant. It is the per-cell body of MarkRedundancy; delta
// maintenance calls it for touched cells and their frontier only.
func (c *Cube) MarkCellRedundancy(spec CuboidSpec, cell *Cell, tau float64) bool {
	if cell.Graph == nil {
		return false
	}
	compared := 0
	minSim := 1.0
	for _, p := range c.ParentRefs(spec, cell.Values) {
		pc, ok := c.Cell(p.Spec, p.Values)
		if !ok || pc.Graph == nil {
			continue
		}
		compared++
		if sim := flowgraph.Similarity(cell.Graph, pc.Graph); sim < minSim {
			minSim = sim
		}
	}
	if compared == 0 {
		cell.Similarity = SimilarityUnknown
		cell.Redundant = false
		return false
	}
	cell.Similarity = minSim
	cell.Redundant = minSim > tau
	return cell.Redundant
}

// Compress removes redundant cells from the cube, yielding the paper's
// non-redundant flowcube. It returns the number of cells removed.
// MarkRedundancy (or Build with Tau > 0) must have run first. Like every
// mutator, it must not run on a lazily loaded cube; Materialize first.
func (c *Cube) Compress() int {
	n := 0
	for _, cb := range c.Cuboids {
		for key, cell := range cb.Cells {
			if cell.Redundant {
				delete(cb.Cells, key)
				n++
			}
		}
	}
	return n
}

// QueryGraph answers a flowgraph query for a cell, following the
// non-redundant cube's inference rule: when the requested cell is absent
// (compressed away, or below the iceberg threshold) the nearest materialized
// ancestor's flowgraph is returned. exact reports whether the cell itself
// answered.
//
// Deprecated: use Answer, which carries a context, returns typed provenance
// instead of two booleans, and reconstructs non-materialized cells exactly
// before falling back to an ancestor. QueryGraph keeps its historical shape
// for existing callers and delegates to Answer.
func (c *Cube) QueryGraph(spec CuboidSpec, values []hierarchy.NodeID) (g *flowgraph.Graph, source *Cell, exact, ok bool) {
	return legacyAnswer(c.Answer(context.Background(), Query{Op: OpCell, Spec: spec, Values: values}))
}

// legacyAnswer adapts an Answer to QueryGraph's 4-return shape.
func legacyAnswer(a *Answer, err error) (*flowgraph.Graph, *Cell, bool, bool) {
	if err != nil || len(a.Cells) == 0 {
		return nil, nil, false, false
	}
	ca := a.Cells[0]
	return ca.Graph, ca.Source, ca.Exact, true
}

// DropCuboid removes one materialized cuboid from the cube and returns it,
// or nil when the cuboid is absent. The materialization planner
// (internal/olap) uses it to prune cuboids whose every cell is exactly
// reconstructable; RestoreCuboid undoes a drop that fails verification.
// Like every mutator it must not run on a lazily loaded cube (it returns
// nil there) or concurrently with readers; servers prune a private cube
// before publishing it.
func (c *Cube) DropCuboid(spec CuboidSpec) *Cuboid {
	if c.lazy != nil {
		return nil
	}
	key := spec.Key()
	cb := c.Cuboids[key]
	if cb == nil {
		return nil
	}
	delete(c.Cuboids, key)
	return cb
}

// RestoreCuboid re-registers a cuboid returned by DropCuboid. A nil cuboid
// is ignored; lazily loaded cubes are refused like DropCuboid.
func (c *Cube) RestoreCuboid(cb *Cuboid) {
	if cb == nil || c.lazy != nil {
		return
	}
	c.Cuboids[cb.Spec.Key()] = cb
}
