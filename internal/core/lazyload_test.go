package core_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

// writeSnapshot saves the cube to a file in dir and returns the path.
func writeSnapshot(t testing.TB, dir string, cube *core.Cube) string {
	t.Helper()
	path := filepath.Join(dir, "cube.fcb")
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// lazyFixture saves the standard fixture cube and lazily reopens it.
func lazyFixture(t *testing.T, opts core.LazyOptions) (eager, lazy *core.Cube) {
	t.Helper()
	eager = fixtureCube(t)
	path := writeSnapshot(t, t.TempDir(), eager)
	lazy, err := core.LoadCubeLazy(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lazy.Close() })
	// Reload the eager cube from the same bytes so both sides went through
	// the same save (tids and mining state are not persisted).
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eager, err = core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return eager, lazy
}

// TestLazyParityFullSurface proves a lazily opened snapshot answers the
// whole read surface byte-identically to the eager load: census, summaries,
// every cell query (exact and rolled up), ranked exceptions, validation,
// and Save bytes.
func TestLazyParityFullSurface(t *testing.T) {
	eager, lazy := lazyFixture(t, core.LazyOptions{})

	if got, want := lazy.NumCells(), eager.NumCells(); got != want {
		t.Fatalf("NumCells: %d, want %d", got, want)
	}
	if got, want := lazy.MinCount(), eager.MinCount(); got != want {
		t.Fatalf("MinCount: %d, want %d", got, want)
	}

	// Summaries: the lazy side answers from flat scans over the mapped
	// sections, never materializing a cell.
	es, ls := eager.CuboidSummaries(), lazy.CuboidSummaries()
	if len(es) != len(ls) {
		t.Fatalf("summaries: %d, want %d", len(ls), len(es))
	}
	for i := range es {
		if es[i].Key != ls[i].Key || es[i].Cells != ls[i].Cells ||
			es[i].Redundant != ls[i].Redundant || es[i].PathLevel != ls[i].PathLevel {
			t.Errorf("summary %d: %+v, want %+v", i, ls[i], es[i])
		}
	}
	if st, ok := lazy.LazyStats(); !ok {
		t.Fatal("LazyStats: not a lazy cube")
	} else if st.DecodedSections != 0 {
		t.Errorf("summaries decoded %d sections; flat scans should decode none", st.DecodedSections)
	}

	// Every materialized cell answers identically, including the roll-up
	// path (query each cell one item level above its own, which exercises
	// QueryGraph's BFS over the lazy Cell lookups).
	for key, cb := range eager.Cuboids {
		for _, cell := range cb.SortedCells() {
			g1, src1, e1, ok1 := eager.QueryGraph(cb.Spec, cell.Values)
			g2, src2, e2, ok2 := lazy.QueryGraph(cb.Spec, cell.Values)
			if ok1 != ok2 || e1 != e2 {
				t.Fatalf("cuboid %s cell %v: (exact=%v ok=%v), want (exact=%v ok=%v)",
					key, cell.Values, e2, ok2, e1, ok1)
			}
			if !ok1 {
				continue
			}
			if src1.Count != src2.Count || src1.Redundant != src2.Redundant {
				t.Errorf("cuboid %s cell %v: source cell mismatch", key, cell.Values)
			}
			if d := flowgraph.Divergence(g1, g2) + flowgraph.Divergence(g2, g1); d > 0 {
				t.Errorf("cuboid %s cell %v: graphs diverge by %g", key, cell.Values, d)
			}
			for _, p := range eager.ParentRefs(cb.Spec, cell.Values) {
				pg1, _, pe1, pok1 := eager.QueryGraph(p.Spec, p.Values)
				pg2, _, pe2, pok2 := lazy.QueryGraph(p.Spec, p.Values)
				if pok1 != pok2 || pe1 != pe2 {
					t.Fatalf("roll-up %s %v: (exact=%v ok=%v), want (exact=%v ok=%v)",
						p.Spec.Key(), p.Values, pe2, pok2, pe1, pok1)
				}
				if pok1 {
					if d := flowgraph.Divergence(pg1, pg2); d > 0 {
						t.Errorf("roll-up %s %v: graphs diverge by %g", p.Spec.Key(), p.Values, d)
					}
				}
			}
		}
	}

	// Ranked exceptions come out field-for-field identical (the lazy side
	// reads them from the flat struct-of-arrays columns).
	ex, lx := eager.TopExceptions(0), lazy.TopExceptions(0)
	if len(ex) != len(lx) {
		t.Fatalf("exceptions: %d, want %d", len(lx), len(ex))
	}
	for i := range ex {
		a, b := ex[i], lx[i]
		if a.Spec.Key() != b.Spec.Key() || core.CellKey(a.Values) != core.CellKey(b.Values) {
			t.Errorf("exception %d: cell %s/%v, want %s/%v",
				i, b.Spec.Key(), b.Values, a.Spec.Key(), a.Values)
		}
		if a.Support != b.Support ||
			math.Float64bits(a.DurationDeviation) != math.Float64bits(b.DurationDeviation) ||
			math.Float64bits(a.TransitionDeviation) != math.Float64bits(b.TransitionDeviation) {
			t.Errorf("exception %d: support/deviation mismatch", i)
		}
		if a.Node.Location != b.Node.Location || a.Node.Depth != b.Node.Depth {
			t.Errorf("exception %d: node mismatch", i)
		}
		ap, bp := a.Node.Prefix(), b.Node.Prefix()
		if len(ap) != len(bp) {
			t.Fatalf("exception %d: prefix length %d, want %d", i, len(bp), len(ap))
		}
		for j := range ap {
			if ap[j] != bp[j] {
				t.Errorf("exception %d: prefix[%d] = %d, want %d", i, j, bp[j], ap[j])
			}
		}
		if len(a.Condition) != len(b.Condition) {
			t.Fatalf("exception %d: condition length mismatch", i)
		}
		for j := range a.Condition {
			if a.Condition[j] != b.Condition[j] {
				t.Errorf("exception %d: condition[%d] mismatch", i, j)
			}
		}
		if a.Transitions.String() != b.Transitions.String() {
			t.Errorf("exception %d: transitions mismatch", i)
		}
	}

	if err := lazy.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Save bytes are identical: sorted sections raw-copy from the mapping.
	var eb, lb bytes.Buffer
	if err := eager.Save(&eb); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Save(&lb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(eb.Bytes(), lb.Bytes()) {
		t.Fatalf("lazy Save produced %d bytes, eager %d; streams differ", lb.Len(), eb.Len())
	}

	// Materialize yields an eager cube with the same bytes.
	mat, err := lazy.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	if err := mat.Save(&mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(eb.Bytes(), mb.Bytes()) {
		t.Fatal("materialized cube saves different bytes")
	}
	if err := lazy.LazyErr(); err != nil {
		t.Fatalf("healthy snapshot recorded a lazy error: %v", err)
	}
}

// TestLazyConcurrentFirstTouch hammers every cell from many goroutines
// (run under -race in CI): single-flight dedup must decode each section
// exactly once, and every answer must match the eager cube.
func TestLazyConcurrentFirstTouch(t *testing.T) {
	eager, lazy := lazyFixture(t, core.LazyOptions{CacheBytes: -1})

	type q struct {
		spec   core.CuboidSpec
		values []hierarchy.NodeID
		count  int64
	}
	var queries []q
	for _, cb := range eager.Cuboids {
		for _, cell := range cb.SortedCells() {
			queries = append(queries, q{cb.Spec, cell.Values, cell.Count})
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, qu := range queries {
				cell, ok := lazy.Cell(qu.spec, qu.values)
				if !ok || cell.Count != qu.count {
					select {
					case errc <- errors.New("concurrent cell mismatch"):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	st, ok := lazy.LazyStats()
	if !ok {
		t.Fatal("LazyStats: not a lazy cube")
	}
	if st.DecodedSections != int64(st.Sections) {
		t.Fatalf("decoded %d sections for %d sections of concurrent traffic; single-flight should decode each once",
			st.DecodedSections, st.Sections)
	}
	if st.Evictions != 0 || st.CachedSections != st.Sections {
		t.Fatalf("unbounded cache evicted: %d evictions, %d/%d resident",
			st.Evictions, st.CachedSections, st.Sections)
	}
}

// TestLazyCacheEviction squeezes the LRU to one resident section: touching
// every cuboid must evict, stats must say so, answers must stay correct,
// and the resident set must never exceed one entry.
func TestLazyCacheEviction(t *testing.T) {
	eager, lazy := lazyFixture(t, core.LazyOptions{CacheBytes: 1})

	for pass := 0; pass < 2; pass++ {
		for _, cb := range eager.Cuboids {
			for _, cell := range cb.SortedCells() {
				got, ok := lazy.Cell(cb.Spec, cell.Values)
				if !ok || got.Count != cell.Count {
					t.Fatalf("pass %d: cell %v of %s wrong under eviction pressure",
						pass, cell.Values, cb.Spec.Key())
				}
			}
		}
	}

	st, _ := lazy.LazyStats()
	if st.Sections < 2 {
		t.Fatalf("fixture has %d sections; eviction test needs at least 2", st.Sections)
	}
	if st.Evictions == 0 {
		t.Fatal("1-byte budget over multiple sections produced no evictions")
	}
	if st.CachedSections != 1 {
		t.Fatalf("%d sections resident, the 1-byte budget allows only the newest", st.CachedSections)
	}
	if st.CachedBytes <= 0 {
		t.Fatalf("resident bytes %d; the only entry always stays", st.CachedBytes)
	}
	if st.DecodedSections <= int64(st.Sections) {
		t.Fatalf("decoded %d sections across two eviction passes; expected re-decodes beyond %d",
			st.DecodedSections, st.Sections)
	}
}

// rewriteSection walks the v2 framing and applies mutate to the idx-th
// section of the given kind, re-framing it with a fresh length and valid
// CRC — corruption that open-time checksum validation cannot catch.
func rewriteSection(t *testing.T, data []byte, kind byte, idx int, mutate func([]byte) []byte) []byte {
	t.Helper()
	crcTable := crc32.MakeTable(crc32.Castagnoli)
	magic := []byte("FCUBEv2\n")
	if !bytes.HasPrefix(data, magic) {
		t.Fatal("fixture is not a v2 snapshot")
	}
	var out bytes.Buffer
	out.Write(magic)
	off := len(magic)
	seen := 0
	for off < len(data) {
		k := data[off]
		n, w := binary.Uvarint(data[off+1:])
		if w <= 0 {
			t.Fatalf("bad frame at offset %d", off)
		}
		payload := data[off+1+w : off+1+w+int(n)]
		off += 1 + w + int(n) + 4
		if k == kind && seen == idx {
			payload = mutate(append([]byte(nil), payload...))
		}
		if k == kind {
			seen++
		}
		out.WriteByte(k)
		var lbuf [binary.MaxVarintLen64]byte
		out.Write(lbuf[:binary.PutUvarint(lbuf[:], uint64(len(payload)))])
		out.Write(payload)
		var crcb [4]byte
		binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(payload, crcTable))
		out.Write(crcb[:])
		if k == 0 { // secEnd
			break
		}
	}
	if seen <= idx {
		t.Fatalf("snapshot has only %d sections of kind %d", seen, kind)
	}
	return out.Bytes()
}

// TestLazyCorruptSectionOnFirstTouch appends a garbage byte to one cuboid
// section payload behind a recomputed (valid) CRC: the lazy open must
// succeed — framing and checksums are fine — and the first decode of that
// section must surface a *CorruptSnapshotError through LazyErr, never a
// panic or a torn cell.
func TestLazyCorruptSectionOnFirstTouch(t *testing.T) {
	cube := fixtureCube(t)
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	const secCuboid = 4
	mutated := rewriteSection(t, buf.Bytes(), secCuboid, 0, func(p []byte) []byte {
		return append(p, 0x7f)
	})
	path := filepath.Join(t.TempDir(), "corrupt.fcb")
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	lazy, err := core.LoadCubeLazy(path, core.LazyOptions{})
	if err != nil {
		t.Fatalf("open must defer payload decoding, got %v", err)
	}
	defer lazy.Close()
	if err := lazy.LazyErr(); err != nil {
		t.Fatalf("error before any touch: %v", err)
	}

	// Validate decodes every section and must report the corruption as a
	// typed error.
	err = lazy.Validate()
	var cse *core.CorruptSnapshotError
	if !errors.As(err, &cse) {
		t.Fatalf("Validate: %v, want a *CorruptSnapshotError", err)
	}
	if !errors.As(lazy.LazyErr(), &cse) {
		t.Fatalf("LazyErr after touch: %v, want a *CorruptSnapshotError", lazy.LazyErr())
	}
	if _, err := lazy.Materialize(); err == nil {
		t.Fatal("Materialize of a corrupt section succeeded")
	}
	var sink bytes.Buffer
	if err := lazy.Save(&sink); err == nil {
		t.Fatal("Save of a corrupt section succeeded")
	}
}

// TestLazyOpenValidatesChecksums flips one payload bit without fixing the
// CRC: the open itself must fail — every section checksum is verified
// eagerly, so bit rot never reaches a decoder.
func TestLazyOpenValidatesChecksums(t *testing.T) {
	cube := fixtureCube(t)
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), buf.Bytes()...)
	flipped[len(flipped)/2] ^= 0x01
	path := filepath.Join(t.TempDir(), "flipped.fcb")
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if c, err := core.LoadCubeLazy(path, core.LazyOptions{}); err == nil {
		_ = c.Close()
		t.Fatal("open accepted a snapshot with a bad section checksum")
	}
}

// TestLazyRejectsNonV2 routes v1 and garbage inputs to ErrNotLazySnapshot
// so callers can fall back to the eager sniff.
func TestLazyRejectsNonV2(t *testing.T) {
	dir := t.TempDir()
	var v1 bytes.Buffer
	if err := fixtureCube(t).SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"v1":      v1.Bytes(),
		"garbage": []byte("not a snapshot at all"),
		"empty":   {},
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := core.LoadCubeLazy(path, core.LazyOptions{}); !errors.Is(err, core.ErrNotLazySnapshot) {
			t.Errorf("%s: err = %v, want ErrNotLazySnapshot", name, err)
		}
	}
}

// TestLazyClose locks in the close semantics: idempotent, and touches after
// close report absence (with the closed error recorded) rather than reading
// a released mapping.
func TestLazyClose(t *testing.T) {
	eager, lazy := lazyFixture(t, core.LazyOptions{})
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for _, cb := range eager.Cuboids {
		for _, cell := range cb.SortedCells() {
			if _, ok := lazy.Cell(cb.Spec, cell.Values); ok {
				t.Fatal("cell answered from a closed mapping")
			}
		}
	}
	if _, err := lazy.Materialize(); err == nil {
		t.Fatal("Materialize after Close succeeded")
	}
	// NumCells still answers (it reads only the in-memory section index).
	if got, want := lazy.NumCells(), eager.NumCells(); got != want {
		t.Fatalf("NumCells after Close: %d, want %d", got, want)
	}
	// Eager cubes are unaffected by Close.
	if err := eager.Close(); err != nil {
		t.Fatalf("Close on an eager cube: %v", err)
	}
}

// TestLazyCloneAndFilterMaterialize exercises the transparent
// materialization of the mutating surface: Clone, FilterCells and Merge of
// lazy shards must behave exactly as on the eager cube.
func TestLazyCloneAndFilterMaterialize(t *testing.T) {
	eager, lazy := lazyFixture(t, core.LazyOptions{})

	clone := lazy.Clone()
	if err := lazy.LazyErr(); err != nil {
		t.Fatalf("Clone recorded an error: %v", err)
	}
	var eb, cb bytes.Buffer
	if err := eager.Save(&eb); err != nil {
		t.Fatal(err)
	}
	if err := clone.Save(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(eb.Bytes(), cb.Bytes()) {
		t.Fatal("clone of the lazy cube saves different bytes")
	}
	// The clone is eager and mutable: redundancy re-marking must work.
	clone.MarkRedundancy(0.5)

	evenOdd := func(even bool) func(values []hierarchy.NodeID) bool {
		return func(values []hierarchy.NodeID) bool {
			return (int(values[0])%2 == 0) == even
		}
	}
	mergedLazy, err := core.Merge([]*core.Cube{lazy.FilterCells(evenOdd(true)), lazy.FilterCells(evenOdd(false))})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mergedLazy.NumCells(), eager.NumCells(); got != want {
		t.Fatalf("filter+merge round trip: %d cells, want %d", got, want)
	}
	var mb bytes.Buffer
	if err := mergedLazy.Save(&mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(eb.Bytes(), mb.Bytes()) {
		t.Fatal("filter+merge of the lazy cube saves different bytes")
	}
}
