package core_test

import (
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
)

func TestPlanCuboidsChain(t *testing.T) {
	lp := core.LayerPlan{
		Minimum:     core.ItemLevel{1, 1},
		Observation: core.ItemLevel{3, 2},
		PathLevels:  []int{0},
	}
	specs, err := core.PlanCuboids(lp, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Chain: (1,1) (2,1) (3,1) (3,2) — 4 item levels × 1 path level.
	if len(specs) != 4 {
		t.Fatalf("planned %d cuboids, want 4: %v", len(specs), specs)
	}
	want := map[string]bool{"1,1@0": true, "2,1@0": true, "3,1@0": true, "3,2@0": true}
	for _, s := range specs {
		if !want[s.Key()] {
			t.Errorf("unexpected cuboid %s", s.Key())
		}
	}
}

func TestPlanCuboidsDrillOrderAndExtra(t *testing.T) {
	lp := core.LayerPlan{
		Minimum:     core.ItemLevel{0, 0},
		Observation: core.ItemLevel{1, 1},
		DrillOrder:  []int{1, 0},
		PathLevels:  []int{0, 1},
		Extra:       []core.CuboidSpec{{Item: core.ItemLevel{1, 0}, PathLevel: 1}},
	}
	specs, err := core.PlanCuboids(lp, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Chain item levels: (0,0) (0,1) (1,1) × 2 path levels = 6, plus the
	// extra (1,0)@1 = 7 (no duplicates).
	if len(specs) != 7 {
		t.Fatalf("planned %d cuboids, want 7: %v", len(specs), specs)
	}
	keys := map[string]bool{}
	for _, s := range specs {
		if keys[s.Key()] {
			t.Errorf("duplicate cuboid %s", s.Key())
		}
		keys[s.Key()] = true
	}
	if !keys["0,1@0"] || keys["1,0@0"] {
		t.Errorf("drill order not respected: %v", specs)
	}
	if !keys["1,0@1"] {
		t.Errorf("extra cuboid missing")
	}
}

func TestPlanCuboidsValidation(t *testing.T) {
	bad := []core.LayerPlan{
		{Minimum: core.ItemLevel{1}, Observation: core.ItemLevel{1, 1}},                             // dim count
		{Minimum: core.ItemLevel{2, 2}, Observation: core.ItemLevel{1, 1}},                          // inverted layers
		{Minimum: core.ItemLevel{0, 0}, Observation: core.ItemLevel{1, 1}, DrillOrder: []int{0, 0}}, // bad permutation
		{Minimum: core.ItemLevel{0, 0}, Observation: core.ItemLevel{1, 1}, PathLevels: []int{9}},    // bad path level
	}
	for i, lp := range bad {
		if _, err := core.PlanCuboids(lp, 2); err == nil {
			t.Errorf("bad layer plan %d accepted", i)
		}
	}
}

func TestBuildWithLayeredPlan(t *testing.T) {
	ex := paperex.New()
	plan := examplePlan(ex)
	specs, err := core.PlanCuboids(core.LayerPlan{
		Minimum:     core.ItemLevel{1, 1},
		Observation: core.ItemLevel{2, 2},
		PathLevels:  []int{0},
	}, len(plan.PathLevels))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := core.Build(ex.DB, core.Config{MinCount: 2, Plan: plan, Cuboids: specs})
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cuboids) != len(specs) {
		t.Fatalf("materialized %d cuboids, want %d", len(cube.Cuboids), len(specs))
	}
	// The observation layer answers exactly.
	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	if _, ok := cube.Cell(spec, []hierarchy.NodeID{
		ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("nike"),
	}); !ok {
		t.Errorf("observation layer cell missing")
	}
	// A level outside the plan falls back to a materialized ancestor.
	deep := core.CuboidSpec{Item: core.ItemLevel{3, 2}, PathLevel: 0}
	_, src, exact, ok := cube.QueryGraph(deep, []hierarchy.NodeID{
		ex.Product.MustLookup("tennis"), ex.Brand.MustLookup("nike"),
	})
	if !ok || exact {
		t.Fatalf("layered query failed: ok=%v exact=%v", ok, exact)
	}
	if src.Count < 2 {
		t.Errorf("fallback source too small")
	}
}
