package core

import (
	"fmt"
	"sort"
)

// Partial materialization (§5). Even the iceberg, non-redundant flowcube
// explodes combinatorially in high-dimensional path databases, so the
// paper adopts the layered strategy of Han, Stefanovic & Koperski [11]:
// materialize a *minimum interesting layer* (the most aggregated cuboid
// analysts still find useful), an *observation layer* (where day-to-day
// analysis happens), and a chain of cuboids along a popular drill path
// between the two. PlanCuboids builds that cuboid list for Config.Cuboids.

// LayerPlan describes a layered partial-materialization request.
type LayerPlan struct {
	// Minimum is the most aggregated item level to materialize.
	Minimum ItemLevel
	// Observation is the most detailed item level to materialize. Every
	// dimension must be at least as deep as in Minimum.
	Observation ItemLevel
	// DrillOrder lists dimension indices in the order analysts typically
	// drill down; the chain from Minimum to Observation deepens
	// dimensions in this order. Nil means dimension order 0, 1, 2, ...
	DrillOrder []int
	// PathLevels selects which path abstraction levels to materialize at
	// every chosen item level. Nil means every level of the plan.
	PathLevels []int
	// Extra adds ad-hoc popular cuboids on top of the chain.
	Extra []CuboidSpec
}

// PlanCuboids expands a layered plan into the cuboid list for
// Config.Cuboids. numPathLevels is the number of path levels in the
// encoding plan (len(Plan.PathLevels)).
func PlanCuboids(lp LayerPlan, numPathLevels int) ([]CuboidSpec, error) {
	m := len(lp.Minimum)
	if len(lp.Observation) != m {
		return nil, fmt.Errorf("core: layer plan levels disagree on dimension count: %d vs %d",
			m, len(lp.Observation))
	}
	if !lp.Minimum.Dominates(lp.Observation) {
		return nil, fmt.Errorf("core: minimum layer %v must be an ancestor of observation layer %v",
			lp.Minimum, lp.Observation)
	}
	order := lp.DrillOrder
	if order == nil {
		order = make([]int, m)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != m {
		return nil, fmt.Errorf("core: drill order has %d entries, want %d", len(order), m)
	}
	seen := make(map[int]bool, m)
	for _, d := range order {
		if d < 0 || d >= m || seen[d] {
			return nil, fmt.Errorf("core: drill order %v is not a permutation of dimensions", order)
		}
		seen[d] = true
	}
	pathLevels := lp.PathLevels
	if pathLevels == nil {
		for pl := 0; pl < numPathLevels; pl++ {
			pathLevels = append(pathLevels, pl)
		}
	}
	for _, pl := range pathLevels {
		if pl < 0 || pl >= numPathLevels {
			return nil, fmt.Errorf("core: path level %d out of range [0,%d)", pl, numPathLevels)
		}
	}

	// The chain: start at the minimum layer, deepen one dimension at a
	// time (one level per step) in drill order until the observation
	// layer is reached.
	var items []ItemLevel
	cur := append(ItemLevel(nil), lp.Minimum...)
	items = append(items, append(ItemLevel(nil), cur...))
	for _, d := range order {
		for cur[d] < lp.Observation[d] {
			cur[d]++
			items = append(items, append(ItemLevel(nil), cur...))
		}
	}

	var specs []CuboidSpec
	for _, il := range items {
		for _, pl := range pathLevels {
			specs = append(specs, CuboidSpec{Item: il, PathLevel: pl})
		}
	}
	specs = append(specs, lp.Extra...)
	return dedupSpecs(specs), nil
}

func dedupSpecs(specs []CuboidSpec) []CuboidSpec {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
	out := specs[:0]
	for i, s := range specs {
		if i == 0 || s.Key() != specs[i-1].Key() {
			out = append(out, s)
		}
	}
	return out
}
