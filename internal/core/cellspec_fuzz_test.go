package core_test

import (
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

func fuzzSchema(t testing.TB) *pathdb.Schema {
	t.Helper()
	loc := hierarchy.New("location")
	loc.MustAddPath("wa", "seattle")
	product := hierarchy.New("product")
	product.MustAddPath("clothing", "shoes", "sandals")
	product.MustAddPath("clothing", "outerwear", "parka")
	brand := hierarchy.New("brand")
	brand.MustAddPath("nike")
	brand.MustAddPath("adidas")
	schema, err := pathdb.NewSchema(loc, product, brand)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// FuzzParseCellSpec throws arbitrary strings at the cell-spec parser. The
// parser fronts both CLI flags and HTTP query parameters, so it must reject
// garbage with an error — never panic or index out of range — and any spec
// it does accept must round-trip through FormatCell back to the same
// item level and values.
func FuzzParseCellSpec(f *testing.F) {
	schema := fuzzSchema(f)
	for _, seed := range []string{
		"",
		"*",
		"product=shoes",
		"product=shoes,brand=*",
		"product=sandals,brand=nike",
		"brand=adidas,product=*",
		"product==shoes",
		"product=shoes,,brand=nike",
		"unknown=shoes",
		"product=unknownconcept",
		"product",
		"=,=,=",
		"product=shoes,product=clothing",
		" product = shoes ",
		"product=shoes,brand=nike,extra=x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		il, values, err := core.ParseCellSpec(schema, spec)
		if err != nil {
			return // rejected without panicking: fine
		}
		if len(il) != len(schema.Dims) || len(values) != len(schema.Dims) {
			t.Fatalf("ParseCellSpec(%q) arity: il=%d values=%d, want %d", spec, len(il), len(values), len(schema.Dims))
		}
		for d, v := range values {
			if il[d] == 0 {
				if v != hierarchy.Root {
					t.Fatalf("ParseCellSpec(%q): aggregated dim %d has concrete value %d", spec, d, v)
				}
				continue
			}
			if schema.Dims[d].Level(v) != il[d] {
				t.Fatalf("ParseCellSpec(%q): dim %d value %d at level %d, item level says %d",
					spec, d, v, schema.Dims[d].Level(v), il[d])
			}
		}
		// Round trip: the canonical rendering must parse back to the same
		// cell.
		canonical := core.FormatCell(schema, values)
		il2, values2, err := core.ParseCellSpec(schema, canonical)
		if err != nil {
			t.Fatalf("FormatCell(%q) = %q does not re-parse: %v", spec, canonical, err)
		}
		for d := range values {
			if values2[d] != values[d] || il2[d] != il[d] {
				t.Fatalf("round trip %q -> %q changed dim %d: value %d->%d level %d->%d",
					spec, canonical, d, values[d], values2[d], il[d], il2[d])
			}
		}
	})
}
