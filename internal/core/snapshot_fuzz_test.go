package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flowcube/internal/core"
)

// FuzzLoadSnapshot throws arbitrary byte streams at Load. The decoder fronts
// files from disk and admin-triggered reloads, so whatever the input it must
// either return an error or a structurally valid cube — never panic, never
// allocate proportionally to a lying length field. Any cube it does accept
// must be a save→load fixed point: re-saving and re-loading it reproduces
// the identical byte stream (the byte-determinism contract of format v2).
func FuzzLoadSnapshot(f *testing.F) {
	cube := fixtureCube(f)
	var v2, v1 bytes.Buffer
	if err := cube.Save(&v2); err != nil {
		f.Fatal(err)
	}
	if err := cube.SaveV1(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add([]byte("FCUBEv2\n"))
	f.Add([]byte{})
	// A few hand-mutated prefixes steer the fuzzer toward the section framing.
	truncated := append([]byte(nil), v2.Bytes()[:v2.Len()/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := core.Load(bytes.NewReader(data))
		var first bytes.Buffer
		if err == nil {
			if err := loaded.Save(&first); err != nil {
				t.Fatalf("accepted cube does not save: %v", err)
			}
			reloaded, err := core.Load(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("saved copy of accepted cube does not load: %v", err)
			}
			var second bytes.Buffer
			if err := reloaded.Save(&second); err != nil {
				t.Fatalf("re-save failed: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("save→load→save is not a fixed point: %d vs %d bytes", first.Len(), second.Len())
			}
		}

		// The lazy open fronts the same files: whatever the input, it must
		// reject with an error or yield a cube whose deferred decodes
		// surface corruption as errors — never a panic — and whose Save
		// bytes represent the same cube the eager loader accepted.
		path := filepath.Join(t.TempDir(), "fuzz.fcb")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		lz, lerr := core.LoadCubeLazy(path, core.LazyOptions{CacheBytes: 1 << 16})
		if lerr != nil {
			return // rejected without panicking: fine
		}
		defer lz.Close()
		lz.NumCells()
		lz.CuboidSummaries()
		lz.TopExceptions(5)
		vErr := lz.Validate()
		var lzBytes bytes.Buffer
		sErr := lz.Save(&lzBytes)
		if err != nil || first.Len() == 0 {
			return // the eager loader rejected the input; nothing to compare
		}
		if vErr != nil {
			t.Fatalf("eagerly loadable snapshot fails lazy validation: %v", vErr)
		}
		if sErr != nil {
			t.Fatalf("eagerly loadable snapshot fails lazy save: %v", sErr)
		}
		if !bytes.Equal(lzBytes.Bytes(), first.Bytes()) {
			// Raw section copies preserve non-canonical (padded-varint)
			// payloads the eager re-encode would normalize; the lazy bytes
			// must still round-trip to the eager fixed point.
			relz, err := core.Load(bytes.NewReader(lzBytes.Bytes()))
			if err != nil {
				t.Fatalf("lazy save does not load: %v", err)
			}
			var norm bytes.Buffer
			if err := relz.Save(&norm); err != nil {
				t.Fatalf("re-save of lazy bytes failed: %v", err)
			}
			if !bytes.Equal(norm.Bytes(), first.Bytes()) {
				t.Fatalf("lazy save diverged from the eager cube: %d vs %d bytes", norm.Len(), first.Len())
			}
		}
	})
}
