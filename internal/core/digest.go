package core

// Cell digests and standalone graph codec helpers for the OLAP layer
// (internal/olap, internal/cluster).
//
// CellDigest hashes exactly the bytes Save's v2 encoder writes for a cell,
// so the materialization planner's exactness certificate — a reconstructed
// cell must be byte-identical to the eagerly built one — is checked against
// the persisted representation, not a lossy in-memory comparison. The
// digest covers values, count, the redundancy flag, similarity bits, and
// the full flat flowgraph including exceptions; a cell whose exceptions
// cannot be refolded (they are holistic) therefore never digests equal to a
// fold, and the planner refuses to drop its cuboid.
//
// EncodeGraph/DecodeGraph expose the same flat columnar graph encoding for
// transport: the cluster router's /v2 scatter ships per-shard partial
// graphs as these bytes and folds them router-side.

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"

	"flowcube/internal/flowgraph"
)

// CellDigest returns the SHA-256 of the cell's v2 snapshot encoding.
func CellDigest(cell *Cell) [sha256.Size]byte {
	return sha256.Sum256(appendCellV2(nil, cell))
}

// EncodedBytes reports the encoded size of one cuboid's snapshot section
// payload. The materialization planner uses it to rank drop candidates by
// the snapshot bytes they would save.
func (cb *Cuboid) EncodedBytes() int {
	return len(encodeCuboidV2(cb))
}

// EncodeGraph serializes one flowgraph in the flat columnar encoding cuboid
// sections use (flatgraph.go). The bytes are deterministic for a given
// graph state.
func EncodeGraph(g *flowgraph.Graph) []byte {
	return appendFlatGraph(nil, flowgraph.Flatten(g))
}

// DecodeGraph decodes bytes produced by EncodeGraph into a flowgraph at the
// cube's given path level. Trailing bytes are an error.
func (c *Cube) DecodeGraph(pathLevel int, data []byte) (*flowgraph.Graph, error) {
	levels := c.Symbols.PathLevels()
	if pathLevel < 0 || pathLevel >= len(levels) {
		return nil, fmt.Errorf("core: decode graph: path level %d outside plan (have %d)", pathLevel, len(levels))
	}
	r := &byteReader{buf: data, section: "graph"}
	flat, err := decodeFlatGraph(r)
	if err != nil {
		return nil, err
	}
	if r.rem() != 0 {
		return nil, r.corrupt("%d trailing bytes", r.rem())
	}
	return flowgraph.Unflatten(c.Schema.Location, levels[pathLevel], flat)
}

// ParseCuboidKey parses the canonical cuboid key format produced by
// CuboidSpec.Key ("l0,l1,...@pathlevel") back into a spec. It validates
// shape only, not whether the spec exists in any plan.
func ParseCuboidKey(key string) (CuboidSpec, error) {
	item, pl, ok := strings.Cut(key, "@")
	if !ok {
		return CuboidSpec{}, fmt.Errorf("core: cuboid key %q: missing @pathlevel", key)
	}
	pathLevel, err := strconv.Atoi(pl)
	if err != nil || pathLevel < 0 {
		return CuboidSpec{}, fmt.Errorf("core: cuboid key %q: bad path level %q", key, pl)
	}
	parts := strings.Split(item, ",")
	il := make(ItemLevel, len(parts))
	for i, p := range parts {
		l, err := strconv.Atoi(p)
		if err != nil || l < 0 {
			return CuboidSpec{}, fmt.Errorf("core: cuboid key %q: bad item level %q", key, p)
		}
		il[i] = l
	}
	return CuboidSpec{Item: il, PathLevel: pathLevel}, nil
}
