//go:build !linux || nommap

package core

// pread fallback for platforms without the mmap path (or builds with the
// nommap tag, which scripts/check.sh exercises): views are read through
// io.ReaderAt into fresh buffers, so the lazy loader behaves identically —
// just with one allocation and one pread per section touch instead of a
// zero-copy subslice.

import (
	"fmt"
	"os"
)

// snapMapped reports whether this build serves lazy cubes from an mmap
// (false here; true in the linux mmap path).
const snapMapped = false

type preadData struct {
	f *os.File
	n int64
}

// openSnapshotData wraps f for positional reads and takes ownership of it:
// the descriptor stays open for the data's lifetime and close releases it.
func openSnapshotData(f *os.File, size int64) (snapData, error) {
	return &preadData{f: f, n: size}, nil
}

func (d *preadData) size() int64 { return d.n }

func (d *preadData) view(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > d.n {
		return nil, fmt.Errorf("core: snapshot view [%d, %d) outside the %d-byte file", off, off+n, d.n)
	}
	buf := make([]byte, n)
	if _, err := d.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("core: snapshot pread at %d: %w", off, err)
	}
	return buf, nil
}

func (d *preadData) close() error {
	if d.f == nil {
		return nil
	}
	f := d.f
	d.f = nil
	return f.Close()
}
