package core

import (
	"fmt"
	"sort"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

// Cube-level inspection helpers: invariant validation for defence in
// depth (after Load, Append, or hand assembly) and a cube-wide ranking of
// mined exceptions for the analyst's "what is most unusual anywhere"
// question.

// Validate checks the cube's structural invariants: every cell's count is
// at least the iceberg threshold and matches its flowgraph's path count
// (adjusted for incremental appends), values fit the cuboid's item level,
// and every flowgraph passes its own validation. It returns the first
// violation.
func (c *Cube) Validate() error {
	if c.lazy != nil {
		// Lazy cubes validate by decoding every section through the LRU;
		// decode failures surface here as *CorruptSnapshotError instead of
		// being swallowed like the error-less query paths must.
		return c.lazy.validate(c)
	}
	// Walk cuboids and cells in sorted order so the *first* violation
	// reported is the same on every run — a nondeterministic error message
	// makes failures impossible to diff across reruns.
	for _, cb := range c.sortedCuboids() {
		if err := c.validateCuboid(cb); err != nil {
			return err
		}
	}
	return nil
}

// validateCuboid checks one cuboid's structural invariants; the per-cuboid
// body of Validate, shared with the lazy path.
func (c *Cube) validateCuboid(cb *Cuboid) error {
	key := cb.Spec.Key()
	if len(cb.Spec.Item) != len(c.Schema.Dims) {
		return fmt.Errorf("core: cuboid %s item level arity %d != %d dims",
			key, len(cb.Spec.Item), len(c.Schema.Dims))
	}
	for _, cell := range cb.SortedCells() {
		if cell.Count < c.minCount {
			return fmt.Errorf("core: cuboid %s holds cell %v below the iceberg threshold (%d < %d)",
				key, cell.Values, cell.Count, c.minCount)
		}
		for d, v := range cell.Values {
			lvl := cb.Spec.Item[d]
			if lvl == 0 {
				if v != hierarchy.Root {
					return fmt.Errorf("core: cuboid %s cell %v has a concrete value in a '*' dimension",
						key, cell.Values)
				}
				continue
			}
			if c.Schema.Dims[d].Level(v) != lvl {
				return fmt.Errorf("core: cuboid %s cell %v value %d not at level %d",
					key, cell.Values, v, lvl)
			}
		}
		if cell.Graph == nil {
			continue
		}
		if cell.Graph.Paths() != cell.Count {
			return fmt.Errorf("core: cuboid %s cell %v count %d != graph paths %d",
				key, cell.Values, cell.Count, cell.Graph.Paths())
		}
		if err := cell.Graph.Validate(); err != nil {
			return fmt.Errorf("core: cuboid %s cell %v: %w", key, cell.Values, err)
		}
	}
	return nil
}

// RankedException pairs an exception with the cell it was mined in.
type RankedException struct {
	Spec   CuboidSpec
	Values []hierarchy.NodeID
	flowgraph.Exception
}

// Severity orders exceptions by their strongest deviation axis.
func (r RankedException) Severity() float64 {
	if r.DurationDeviation > r.TransitionDeviation {
		return r.DurationDeviation
	}
	return r.TransitionDeviation
}

// TopExceptions returns the k most severe exceptions across every
// materialized cell, ties broken deterministically by cell then support.
// k <= 0 returns all.
func (c *Cube) TopExceptions(k int) []RankedException {
	var out []RankedException
	if c.lazy != nil {
		// Flat scan over the mapped sections: exceptions come straight from
		// the struct-of-arrays columns (flowgraph.FlatExceptions) in the
		// same sorted cuboid/cell/mining order the eager walk produces, so
		// the identical stable sort below yields the identical ranking.
		xs, err := c.lazy.topExceptions()
		if err != nil {
			c.lazy.noteErr(err)
			return nil
		}
		out = xs
	} else {
		for _, cb := range c.sortedCuboids() {
			for _, cell := range cb.SortedCells() {
				if cell.Graph == nil {
					continue
				}
				for _, x := range cell.Graph.Exceptions() {
					out = append(out, RankedException{
						Spec:      cb.Spec,
						Values:    cell.Values,
						Exception: x,
					})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		// Compared two-sided so no float equality test is needed: severities
		// that differ only in rounding residue fall through to the support
		// tiebreak instead of being ordered by noise.
		si, sj := out[i].Severity(), out[j].Severity()
		if si > sj {
			return true
		}
		if sj > si {
			return false
		}
		return out[i].Support > out[j].Support
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
