package core

import (
	"context"
	"io"

	"flowcube/internal/pathdb"
)

// BuildContext is Build with cancellation: the configuration is validated
// up front (returning *ConfigError), and ctx is checked between the
// pipeline phases — encode+mine, populate, sub-δ ledger, exception mining,
// redundancy marking — so a cancelled build returns promptly without
// leaving goroutines behind (each phase joins its own workers). A build
// cancelled mid-phase finishes that phase first; phases are the paper's
// natural barriers and the granularity the snapshot codec shares.
func BuildContext(ctx context.Context, db *pathdb.DB, cfg Config) (*Cube, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cube, conds, err := prepare(db, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// One scan of the path database assigns records to the cells of every
	// materialized cuboid and folds their paths into the flowgraphs.
	cube.populate(db)

	if cfg.DeltaLedger {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cube.buildLedger(db)
	}
	if cfg.MineExceptions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cube.mineExceptions(db, conds)
	}
	if cfg.Tau > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cube.MarkRedundancy(cfg.Tau)
	}
	return cube, nil
}

// LoadContext is Load with cancellation: ctx is checked between snapshot
// sections (header, hierarchies, plan, each cuboid, ledger), so loading a
// large snapshot from a slow reader can be abandoned without decoding the
// rest.
func LoadContext(ctx context.Context, r io.Reader) (*Cube, error) {
	return LoadContextWith(ctx, r, LoadOptions{})
}
