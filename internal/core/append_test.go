package core_test

import (
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func TestAppendUpdatesCells(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})
	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("nike")}
	before, _ := cube.Cell(spec, values)
	countBefore := before.Count
	pathsBefore := before.Graph.Paths()

	rec := pathdb.Record{
		Dims: []hierarchy.NodeID{ex.Product.MustLookup("tennis"), ex.Brand.MustLookup("nike")},
		Path: pathdb.Path{
			{Location: ex.Location.MustLookup("f"), Duration: 7},
			{Location: ex.Location.MustLookup("s"), Duration: 2},
		},
	}
	if err := cube.Append(rec); err != nil {
		t.Fatal(err)
	}
	after, _ := cube.Cell(spec, values)
	if after.Count != countBefore+1 || after.Graph.Paths() != pathsBefore+1 {
		t.Errorf("cell not updated: count %d→%d paths %d→%d",
			countBefore, after.Count, pathsBefore, after.Graph.Paths())
	}
	// The apex cell updated too.
	apex, _ := cube.Cell(core.CuboidSpec{Item: core.ItemLevel{0, 0}, PathLevel: 0},
		[]hierarchy.NodeID{hierarchy.Root, hierarchy.Root})
	if apex.Count != 9 {
		t.Errorf("apex count = %d, want 9", apex.Count)
	}
	// Unrelated cells did not.
	other, _ := cube.Cell(spec, []hierarchy.NodeID{
		ex.Product.MustLookup("outerwear"), ex.Brand.MustLookup("nike"),
	})
	if other.Count != 3 {
		t.Errorf("unrelated cell count changed to %d", other.Count)
	}
	if cube.StaleExceptions() != 1 {
		t.Errorf("stale counter = %d, want 1", cube.StaleExceptions())
	}
}

// TestAppendMatchesRebuild: for cells frequent in both, incremental append
// must produce the same flowgraph as building from the extended database
// (Lemma 4.2 in action).
func TestAppendMatchesRebuild(t *testing.T) {
	ex := paperex.New()
	extra := pathdb.Record{
		Dims: []hierarchy.NodeID{ex.Product.MustLookup("jacket"), ex.Brand.MustLookup("nike")},
		Path: pathdb.Path{
			{Location: ex.Location.MustLookup("f"), Duration: 10},
			{Location: ex.Location.MustLookup("t"), Duration: 2},
			{Location: ex.Location.MustLookup("w"), Duration: 3},
		},
	}

	cfg := core.Config{MinCount: 2, Plan: examplePlan(ex)}
	incremental, err := core.Build(ex.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := incremental.Append(extra); err != nil {
		t.Fatal(err)
	}

	ex2 := paperex.New()
	ex2.DB.MustAppend(extra)
	rebuilt, err := core.Build(ex2.DB, core.Config{MinCount: 2, Plan: examplePlan(ex2)})
	if err != nil {
		t.Fatal(err)
	}

	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{ex.Product.MustLookup("outerwear"), ex.Brand.MustLookup("nike")}
	a, okA := incremental.Cell(spec, values)
	b, okB := rebuilt.Cell(spec, values)
	if !okA || !okB {
		t.Fatal("cell missing")
	}
	if a.Count != b.Count {
		t.Fatalf("counts differ: %d vs %d", a.Count, b.Count)
	}
	if d := flowgraph.Divergence(a.Graph, b.Graph) + flowgraph.Divergence(b.Graph, a.Graph); d > 1e-12 {
		t.Errorf("incremental and rebuilt graphs diverge by %g", d)
	}
}

func TestAppendValidation(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})
	bad := []pathdb.Record{
		{Dims: []hierarchy.NodeID{1}, Path: pathdb.Path{{Location: 1, Duration: 1}}},
		{Dims: []hierarchy.NodeID{1, 1}, Path: nil},
		{Dims: []hierarchy.NodeID{99, 1}, Path: pathdb.Path{{Location: 1, Duration: 1}}},
	}
	for i, r := range bad {
		if err := cube.Append(r); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	_ = ex
	if cube.StaleExceptions() != 0 {
		t.Errorf("failed appends must not mark staleness")
	}
}
