// Package core assembles the paper's flowcube (§4): a collection of
// cuboids, each characterized by an item abstraction level Il and a path
// abstraction level Pl, whose cells carry flowgraph measures.
//
// Build drives the whole §5 pipeline: transaction encoding, the Shared
// mining of frequent cells and frequent path segments at every materialized
// abstraction level, flowgraph construction per frequent cell (the iceberg
// condition, Definition 4.5), exception mining from the frequent segments,
// and redundancy marking against item-lattice parents (Definition 4.4).
package core

import (
	"fmt"
	"sort"
	"strings"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// ItemLevel is an item abstraction level: one hierarchy level per
// path-independent dimension, 0 meaning the dimension is aggregated to '*'.
type ItemLevel []int

// Key returns a canonical identity string.
func (il ItemLevel) Key() string {
	parts := make([]string, len(il))
	for i, l := range il {
		parts[i] = fmt.Sprint(l)
	}
	return strings.Join(parts, ",")
}

// Dominates reports il ⪯ other in the item lattice: il is at least as
// general in every dimension (the paper's n1 ⪯ n2 ordering).
func (il ItemLevel) Dominates(other ItemLevel) bool {
	for i := range il {
		if il[i] > other[i] {
			return false
		}
	}
	return true
}

// CuboidSpec identifies a cuboid ⟨Il, Pl⟩. PathLevel indexes the encoding
// plan's path levels.
type CuboidSpec struct {
	Item      ItemLevel
	PathLevel int
}

// Key returns a canonical identity string.
func (cs CuboidSpec) Key() string {
	return cs.Item.Key() + "@" + fmt.Sprint(cs.PathLevel)
}

// Cell is one flowcube cell: a combination of dimension values at the
// cuboid's item level, measured by a flowgraph over the cell's paths
// aggregated to the cuboid's path level.
type Cell struct {
	// Values holds one concept per dimension; hierarchy.Root for '*'.
	Values []hierarchy.NodeID
	// Count is the number of paths in the cell.
	Count int64
	// Graph is the flowgraph measure.
	Graph *flowgraph.Graph
	// Redundant marks cells whose flowgraph can be inferred from their
	// item-lattice parents at the same path level (Definition 4.4); set by
	// MarkRedundancy.
	Redundant bool
	// Similarity is the smallest parent similarity ϕ observed when marking
	// redundancy. It is SimilarityUnknown until MarkRedundancy runs, and
	// stays SimilarityUnknown for cells with no materialized parents to
	// compare against (the apex, or partially materialized lattices): such
	// cells are never redundant, and a real ϕ in (0, 1] must not be
	// fabricated for them.
	Similarity float64

	tids []int32
}

// cellKey canonically encodes per-dimension values.
func cellKey(values []hierarchy.NodeID) string {
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// SimilarityUnknown is the Cell.Similarity sentinel meaning "no parent
// similarity has been measured": MarkRedundancy has not run, or the cell has
// no materialized item-lattice parents to compare against. Valid measured
// similarities lie in (0, 1].
const SimilarityUnknown = -1

// Cuboid is a materialized cuboid: its spec and frequent cells.
type Cuboid struct {
	Spec  CuboidSpec
	Cells map[string]*Cell
}

// Cube is a materialized (iceberg, optionally non-redundant) flowcube.
//
// Concurrency: a finished cube is safe for concurrent readers. The read
// paths — Cell, Cuboid, QueryGraph, NumCells, CuboidSummaries,
// TopExceptions, Validate, SortedCells, and every flowgraph render/analysis
// method they expose — do not mutate the cube or any lazily cached state.
// Mutating operations (Append, MarkRedundancy, Compress) must not run
// concurrently with readers; long-lived servers should treat a cube as
// immutable after construction and swap whole-cube snapshots instead
// (see internal/server).
type Cube struct {
	Schema  *pathdb.Schema
	Config  Config
	Symbols *transact.Symbols
	// Mining is the Shared run that produced the cube; kept for
	// inspection (candidate statistics, frequent segments).
	Mining *mining.Result
	// Cuboids maps CuboidSpec keys to materialized cuboids.
	Cuboids map[string]*Cuboid

	minCount int64
	appended int64
	// ledger is the sub-δ count store carried when Config.DeltaLedger is
	// set; see delta.go and internal/incr.
	ledger *Ledger
	// condCache remembers each cell's exception conditions
	// (specKey → CellKey → set); see conds.go. Not serialized.
	condCache map[string]map[string]*CondSet
	// lazy is non-nil for cubes opened with LoadCubeLazy: Cuboids stays
	// empty and the read paths answer from the mapped snapshot through the
	// backend (see lazyload.go). Mutators need Materialize first.
	lazy *lazyBackend
}

// Config parameterizes Build.
type Config struct {
	// MinSupport is the iceberg threshold δ as a fraction of the database;
	// MinCount overrides it with an absolute count.
	MinSupport float64
	MinCount   int64
	// Epsilon is the minimum deviation ε for recording an exception.
	Epsilon float64
	// Tau is the similarity threshold τ above which a cell is redundant
	// given its parents. Zero disables redundancy marking.
	Tau float64
	// Plan is the encoding/materialization plan (dimension levels and path
	// levels). It must contain at least one path level.
	Plan transact.Plan
	// Cuboids restricts materialization to the listed cuboids (partial
	// materialization, §5). Nil materializes every combination of the
	// plan's dimension levels (plus '*') and path levels.
	Cuboids []CuboidSpec
	// MineExceptions controls whether flowgraph exceptions are computed.
	// They are the holistic (expensive) part of the measure; benchmarks of
	// the mining algorithms leave this off.
	MineExceptions bool
	// SingleStageExceptions additionally mines exceptions conditioned on
	// every single prior stage duration (not only on frequent segments).
	SingleStageExceptions bool
	// Merge combines durations of stages merged during path aggregation.
	Merge pathdb.DurationMerge
	// MiningOptions overrides the algorithm configuration; zero value
	// means SharedOptions(MinSupport).
	MiningOptions *mining.Options
	// Workers spreads flowgraph construction and exception mining across
	// goroutines (cells are independent). It is also copied into the
	// mining options when they are not overridden. 0 or 1 is sequential.
	Workers int
	// DeltaLedger carries an auxiliary sub-δ count ledger in the cube (and
	// its snapshots): the exact count of every below-threshold dimension
	// combination at each materialized item level. It is what lets
	// incr.ApplyDelta admit newly-frequent iceberg cells without a base
	// database scan; see DESIGN.md §9.
	DeltaLedger bool
}

// MinCount reports the absolute iceberg threshold used by the cube.
func (c *Cube) MinCount() int64 { return c.minCount }

// Cuboid returns a materialized cuboid, or nil. On a lazily loaded cube
// this decodes the cuboid's section on first touch (through the LRU); a
// section that fails to decode reports nil, with the error available via
// LazyErr.
func (c *Cube) Cuboid(spec CuboidSpec) *Cuboid {
	if c.lazy != nil {
		return c.lazy.cuboidByKey(spec.Key())
	}
	return c.Cuboids[spec.Key()]
}

// Cell resolves a cell by cuboid spec and per-dimension values (which must
// already be at the spec's item level; '*' dimensions use hierarchy.Root).
func (c *Cube) Cell(spec CuboidSpec, values []hierarchy.NodeID) (*Cell, bool) {
	cb := c.Cuboid(spec)
	if cb == nil {
		return nil, false
	}
	cell, ok := cb.Cells[cellKey(values)]
	return cell, ok
}

// Cells returns every materialized cell of a cuboid sorted by value key,
// for deterministic iteration.
func (cb *Cuboid) SortedCells() []*Cell {
	keys := make([]string, 0, len(cb.Cells))
	for k := range cb.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Cell, len(keys))
	for i, k := range keys {
		out[i] = cb.Cells[k]
	}
	return out
}

// sortedCuboids returns the materialized cuboids in ascending key order.
// Every path that serializes, validates, or reports on the whole cube walks
// this slice rather than the Cuboids map: map iteration order is randomized
// per run, so ranging the map directly would make snapshots, first-violation
// errors, and summaries differ between two otherwise identical processes.
func (c *Cube) sortedCuboids() []*Cuboid {
	if c.lazy != nil {
		return c.lazy.sortedAll()
	}
	keys := make([]string, 0, len(c.Cuboids))
	for k := range c.Cuboids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Cuboid, len(keys))
	for i, k := range keys {
		out[i] = c.Cuboids[k]
	}
	return out
}

// NumCells reports the total number of materialized cells across cuboids.
// On a lazy cube it sums the per-section cell counts from the section
// headers without decoding any cells.
func (c *Cube) NumCells() int {
	if c.lazy != nil {
		return c.lazy.numCells()
	}
	n := 0
	for _, cb := range c.Cuboids {
		n += len(cb.Cells)
	}
	return n
}

// CuboidSummary describes one materialized cuboid: its identity and cell
// counts.
type CuboidSummary struct {
	Key       string
	Item      ItemLevel
	PathLevel int
	Cells     int
	Redundant int
}

// CuboidSummaries returns a per-cuboid census sorted by cuboid key, so
// long-lived consumers (e.g. query servers) can report on the cube without
// iterating its internal maps. It is a pure read and safe under concurrent
// readers. On a lazy cube the census comes from a flat scan over the
// mapped sections (cached per section) without materializing any cells; a
// scan failure reports nil with the error available via LazyErr.
func (c *Cube) CuboidSummaries() []CuboidSummary {
	if c.lazy != nil {
		out, err := c.lazy.summaries()
		if err != nil {
			c.lazy.noteErr(err)
			return nil
		}
		return out
	}
	out := make([]CuboidSummary, 0, len(c.Cuboids))
	for key, cb := range c.Cuboids {
		s := CuboidSummary{
			Key:       key,
			Item:      cb.Spec.Item,
			PathLevel: cb.Spec.PathLevel,
			Cells:     len(cb.Cells),
		}
		for _, cell := range cb.Cells {
			if cell.Redundant {
				s.Redundant++
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// specsFromPlan enumerates every cuboid of the plan: the cross product of
// per-dimension {'*'} ∪ materialized levels with the path levels.
func specsFromPlan(syms *transact.Symbols) []CuboidSpec {
	dimLevels := syms.DimLevels()
	var items []ItemLevel
	var rec func(d int, cur ItemLevel)
	rec = func(d int, cur ItemLevel) {
		if d == len(dimLevels) {
			items = append(items, append(ItemLevel(nil), cur...))
			return
		}
		rec(d+1, append(cur, 0))
		for _, l := range dimLevels[d] {
			rec(d+1, append(cur, l))
		}
	}
	rec(0, nil)
	var out []CuboidSpec
	for pl := range syms.PathLevels() {
		for _, il := range items {
			out = append(out, CuboidSpec{Item: il, PathLevel: pl})
		}
	}
	return out
}
