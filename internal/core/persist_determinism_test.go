package core_test

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"flowcube/internal/core"
)

// saveDigest serializes the cube and returns the snapshot's SHA-256.
func saveDigest(t *testing.T, cube *core.Cube) ([32]byte, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes()), buf.Len()
}

// TestSaveIsByteDeterministic guards the snapshot byte-determinism contract:
// saving the same cube twice — and saving a loaded copy of it — produces
// identical bytes. Cuboids and cells live in maps, so this only holds
// because Save walks them in sorted key order; a regression here shows up as
// snapshot digests that differ between runs, which breaks content-addressed
// storage and makes reload-diffing impossible.
func TestSaveIsByteDeterministic(t *testing.T) {
	_, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Tau:                   0.5,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	cube.MarkRedundancy(0.5)

	d1, n1 := saveDigest(t, cube)
	d2, n2 := saveDigest(t, cube)
	if d1 != d2 {
		t.Fatalf("two saves of the same cube differ: %x (%d bytes) vs %x (%d bytes)", d1, n1, d2, n2)
	}

	// Round trip: a loaded cube re-saves to the same bytes, so snapshots are
	// stable across process generations, not just within one.
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d3, n3 := saveDigest(t, loaded)
	if d1 != d3 {
		t.Fatalf("save→load→save changed the bytes: %x (%d bytes) vs %x (%d bytes)", d1, n1, d3, n3)
	}
}

// TestCodecIsWorkerCountInvariant pins the parallel-codec contract: encoding
// cuboid sections on one goroutine or eight produces identical bytes, and
// decoding with any worker count yields cubes that re-save identically. Run
// under -race (scripts/check.sh) this also shakes out data races in the
// worker pools.
func TestCodecIsWorkerCountInvariant(t *testing.T) {
	_, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Tau:                   0.5,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	cube.MarkRedundancy(0.5)

	var seq, par bytes.Buffer
	if err := cube.SaveWith(&seq, core.SaveOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cube.SaveWith(&par, core.SaveOptions{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("sequential and parallel saves differ: %d vs %d bytes", seq.Len(), par.Len())
	}

	for _, workers := range []int{1, 8} {
		loaded, err := core.LoadWith(bytes.NewReader(seq.Bytes()), core.LoadOptions{Workers: workers})
		if err != nil {
			t.Fatalf("load with %d workers: %v", workers, err)
		}
		d, _ := saveDigest(t, loaded)
		if want := sha256.Sum256(seq.Bytes()); d != want {
			t.Errorf("cube loaded with %d workers re-saves differently", workers)
		}
	}
}
