package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flowcube/internal/core"
)

// v1FixturePath is a checked-in legacy v1 gob snapshot of the Table-1
// example cube. Regenerate with
//
//	FLOWCUBE_REGEN_FIXTURES=1 go test ./internal/core -run TestV1GoldenFixture
//
// after an intentional change to the fixture cube's build configuration.
const v1FixturePath = "testdata/cube_v1.gob"

func fixtureCube(t testing.TB) *core.Cube {
	_, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Tau:                   0.5,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	cube.MarkRedundancy(0.5)
	return cube
}

// TestV1GoldenFixture guards backward compatibility of Load with snapshots
// written before the v2 columnar format existed: the checked-in v1 gob file
// must keep loading through the magic sniff, and the loaded cube must
// re-save to exactly the bytes a freshly built cube saves — the v1→v2
// upgrade path is byte-deterministic.
func TestV1GoldenFixture(t *testing.T) {
	if os.Getenv("FLOWCUBE_REGEN_FIXTURES") != "" {
		if err := os.MkdirAll(filepath.Dir(v1FixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fixtureCube(t).SaveV1(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(v1FixturePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", v1FixturePath, buf.Len())
	}

	data, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with FLOWCUBE_REGEN_FIXTURES=1): %v", err)
	}
	loaded, err := core.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 snapshot no longer loads: %v", err)
	}

	fresh := fixtureCube(t)
	if loaded.NumCells() != fresh.NumCells() || len(loaded.Cuboids) != len(fresh.Cuboids) {
		t.Fatalf("fixture cube shape drifted: %d cells / %d cuboids, want %d / %d",
			loaded.NumCells(), len(loaded.Cuboids), fresh.NumCells(), len(fresh.Cuboids))
	}

	d1, n1 := saveDigest(t, loaded)
	d2, _ := saveDigest(t, loaded)
	if d1 != d2 {
		t.Fatal("re-saving the loaded v1 cube is not byte-deterministic")
	}
	dFresh, _ := saveDigest(t, fresh)
	if d1 != dFresh {
		t.Errorf("v1→v2 upgrade bytes (%d) differ from a fresh build's v2 save", n1)
	}
}
