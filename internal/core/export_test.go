package core

// SetMaxPackedKeyBitsForTest overrides the packed cell-key width cap so
// tests can force the binary-string key fallback on small schemas. The
// returned func restores the production value.
func SetMaxPackedKeyBitsForTest(n int) (restore func()) {
	old := maxPackedKeyBits
	maxPackedKeyBits = n
	return func() { maxPackedKeyBits = old }
}
