package core_test

import (
	"bytes"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

func TestCubeValidate(t *testing.T) {
	ex, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err := cube.Validate(); err != nil {
		t.Fatalf("fresh cube invalid: %v", err)
	}

	// Still valid after an incremental append...
	rec := pathdb.Record{
		Dims: []hierarchy.NodeID{ex.Product.MustLookup("tennis"), ex.Brand.MustLookup("nike")},
		Path: pathdb.Path{{Location: ex.Location.MustLookup("f"), Duration: 1}},
	}
	if err := cube.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := cube.Validate(); err != nil {
		t.Fatalf("cube invalid after append: %v", err)
	}

	// ... and after a save/load round trip.
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded cube invalid: %v", err)
	}
}

func TestCubeValidateCatchesCorruption(t *testing.T) {
	_, cube := buildExample(t, core.Config{MinCount: 2})
	for _, cb := range cube.Cuboids {
		for _, cell := range cb.Cells {
			cell.Count++ // desync count from graph
			if err := cube.Validate(); err == nil {
				t.Fatalf("corrupted cell not detected")
			}
			cell.Count--
			return
		}
	}
}

func TestTopExceptions(t *testing.T) {
	_, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	all := cube.TopExceptions(0)
	if len(all) == 0 {
		t.Fatal("no exceptions ranked")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Severity() > all[i-1].Severity() {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
	top3 := cube.TopExceptions(3)
	if len(top3) != 3 {
		t.Fatalf("TopExceptions(3) returned %d", len(top3))
	}
	if top3[0].Severity() != all[0].Severity() {
		t.Errorf("truncation changed the top")
	}
	// Determinism.
	again := cube.TopExceptions(3)
	for i := range top3 {
		if top3[i].Severity() != again[i].Severity() || top3[i].Support != again[i].Support {
			t.Fatalf("ranking not deterministic")
		}
	}
}
