package core

import (
	"fmt"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Incremental maintenance. Because the duration and transition
// distributions of a flowgraph are algebraic measures (paper Lemma 4.2),
// new paths can be folded into a materialized cube without revisiting the
// path database: each affected cell's count and flowgraph update in place.
// Two caveats follow directly from the paper:
//
//   - the iceberg cell set is fixed at build time — a cell that was below
//     δ then is not created retroactively (rebuild to re-evaluate the
//     iceberg condition), and
//   - exceptions are holistic (Lemma 4.3) and become stale; the cube
//     tracks that and reports it via StaleExceptions.

// Append folds one record into every materialized cell it belongs to.
func (c *Cube) Append(r pathdb.Record) error {
	if len(r.Dims) != len(c.Schema.Dims) {
		return fmt.Errorf("core: record has %d dimension values, schema has %d",
			len(r.Dims), len(c.Schema.Dims))
	}
	if len(r.Path) == 0 {
		return fmt.Errorf("core: record has an empty path")
	}
	for i, v := range r.Dims {
		if int(v) < 0 || int(v) >= c.Schema.Dims[i].Len() {
			return fmt.Errorf("core: dimension %q value %d out of range",
				c.Schema.Dims[i].Dimension(), v)
		}
	}
	values := make([]hierarchy.NodeID, len(r.Dims))
	for _, cb := range c.Cuboids {
		for d, v := range r.Dims {
			if cb.Spec.Item[d] == 0 {
				values[d] = hierarchy.Root
			} else {
				values[d] = c.Schema.Dims[d].AncestorAt(v, cb.Spec.Item[d])
			}
		}
		cell, ok := cb.Cells[cellKey(values)]
		if !ok {
			continue
		}
		cell.Count++
		if cell.Graph != nil {
			cell.Graph.AddPath(r.Path)
		}
	}
	c.appended++
	return nil
}

// AppendAll folds a batch of records; it stops at the first invalid one.
func (c *Cube) AppendAll(records []pathdb.Record) error {
	for i, r := range records {
		if err := c.Append(r); err != nil {
			return fmt.Errorf("core: record %d: %w", i, err)
		}
	}
	return nil
}

// StaleExceptions reports how many records were appended since the cube's
// exceptions (and redundancy marks) were last computed. Non-zero means the
// holistic parts of the measure no longer reflect all data.
func (c *Cube) StaleExceptions() int64 { return c.appended }
