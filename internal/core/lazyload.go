package core

// Lazy (mmap-backed) snapshot serving: LoadCubeLazy maps a v2 snapshot
// read-only, eagerly validates the framing — magic, header, section index,
// every section's CRC-32C — and decodes the preamble and ledger once, but
// leaves every cuboid section as a byte range into the mapping. Cells are
// decoded per section on first touch through a byte-budgeted LRU with
// single-flight dedup, so a server's cold open costs milliseconds and its
// resident decoded state stays bounded regardless of cube size. Summary and
// exception queries answer directly from flat scans over the mapped arrays
// without materializing a Cell at all (the FlowCube partial-materialization
// idea applied to storage; see DESIGN.md §8).
//
// Decoded structures never alias the mapping — strings and columns are
// fresh heap allocations — so eviction only drops cache references and
// already-returned cuboids stay valid; Close (or the finalizer) is the only
// operation that invalidates the mapping, and it must not race in-flight
// queries, the same contract snapshot swapping already has.
//
// This file is on the immutcube allowlist: the cube assembled here is
// freshly constructed, and the lazy backend's internal caches are guarded
// by their own synchronization, invisible to the Cube's immutable contract.

import (
	"container/list"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// DefaultLazyCacheBytes is the decoded-cuboid LRU budget when
// LazyOptions.CacheBytes is zero (~64 MB of estimated decoded heap).
const DefaultLazyCacheBytes = 64 << 20

// ErrNotLazySnapshot reports that the file is not a v2 columnar snapshot
// (wrong magic, or shorter than one): only v2 sections can be served
// lazily. Callers typically fall back to the eager Load path, which also
// understands v1 gob snapshots.
var ErrNotLazySnapshot = errors.New("core: not a v2 snapshot; lazy open needs the columnar format")

// errLazyClosed is returned by touches of a lazily loaded cube after Close.
var errLazyClosed = errors.New("core: lazy cube is closed")

// LazyOptions parameterizes LoadCubeLazy.
type LazyOptions struct {
	// CacheBytes budgets the decoded-cuboid LRU, measured in estimated
	// decoded heap bytes (see flatFootprint) rather than encoded payload
	// bytes. 0 means DefaultLazyCacheBytes; negative disables eviction.
	// One cuboid section larger than the whole budget still caches (the
	// LRU never evicts its only entry), so the resident bound is
	// max(CacheBytes, largest single section).
	CacheBytes int64
}

// snapData is the byte source behind a lazily loaded snapshot: an mmap on
// linux (zero-copy views), an io.ReaderAt fallback elsewhere or under the
// nommap build tag (per-view pread into a fresh buffer).
type snapData interface {
	// view returns the byte range [off, off+n). Mapped implementations
	// return a subslice of the mapping, which callers must not retain past
	// close; the fallback returns a fresh copy.
	view(off, n int64) ([]byte, error)
	size() int64
	close() error
}

// lazySection is one cuboid section of the snapshot: its decoded header
// (spec, cell count) plus the payload byte range. The flat-scan result is
// cached after the first summary/save scan.
type lazySection struct {
	key      string
	spec     CuboidSpec
	numCells int
	off, n   int64
	scan     atomic.Pointer[sectionScan]
}

// sectionScan is the result of one flat walk over a section's cells:
// the redundant-cell census (for CuboidSummaries) and whether the cells
// are stored in sorted key order (raw byte copy on Save is only valid
// then — eager Save re-sorts, and lazy Save must produce identical bytes).
type sectionScan struct {
	redundant int
	sorted    bool
}

// lazyBackend holds everything behind a lazily loaded cube: the mapped
// data, the section index, the decoded-cuboid LRU, and the sticky first
// decode error.
type lazyBackend struct {
	data   snapData
	loc    *hierarchy.Hierarchy
	levels []pathdb.PathLevel
	secs   map[string]*lazySection
	order  []*lazySection // sorted by key: deterministic scans and saves

	cache cuboidCache

	// decodedSections/decodedBytes count cumulative section decodes (cache
	// misses that ran the decoder) and the encoded payload bytes they read.
	decodedSections atomic.Int64
	decodedBytes    atomic.Int64

	closed    atomic.Bool
	closeOnce sync.Once

	// firstErr is the sticky first decode/IO error surfaced by a touch.
	// Query paths that cannot return an error (Cell, CuboidSummaries, ...)
	// record it here and report absence; (*Cube).LazyErr exposes it.
	errMu    sync.Mutex
	firstErr error
}

// LazyStats is a point-in-time snapshot of a lazy cube's serving state,
// for /metrics-style reporting.
type LazyStats struct {
	// Mapped is true when the snapshot is served from an mmap (false under
	// the pread fallback).
	Mapped bool
	// MappedBytes is the snapshot file size backing the cube.
	MappedBytes int64
	// BudgetBytes is the decoded-cuboid LRU budget (<0: unbounded).
	BudgetBytes int64
	// Sections is the number of cuboid sections in the snapshot.
	Sections int
	// DecodedSections and DecodedBytes count cumulative section decodes
	// and the encoded payload bytes they consumed.
	DecodedSections int64
	DecodedBytes    int64
	// CachedSections and CachedBytes describe the LRU's resident set;
	// CachedBytes is the estimated decoded heap footprint.
	CachedSections int
	CachedBytes    int64
	CacheHits      int64
	CacheMisses    int64
	Evictions      int64
}

// LoadCubeLazy opens a v2 snapshot for lazy serving: the file is mapped
// read-only (pread fallback under the nommap tag or off linux), every
// section's framing and CRC-32C is validated eagerly, the preamble and
// ledger are decoded once, and cuboid sections decode on first touch
// through a CacheBytes-budgeted LRU with single-flight dedup.
//
// The returned cube answers the full read surface — Cell, QueryGraph,
// NumCells, CuboidSummaries, TopExceptions, Validate, Save, Clone —
// byte-identically to an eager Load of the same file. Mutating operations
// (MarkRedundancy, Compress, ApplyDelta) need an eager copy: use
// Materialize. Close releases the mapping; it must not race in-flight
// queries. Decode errors on first touch are *CorruptSnapshotError values:
// paths that return errors propagate them, and the error-less query paths
// record the first one for (*Cube).LazyErr and report absence.
func LoadCubeLazy(path string, opts LazyOptions) (*Cube, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // the stat error is the one worth reporting
		return nil, err
	}
	size := st.Size()
	if size < int64(len(magicV2)) {
		_ = f.Close() // not our format; close error carries no information
		return nil, ErrNotLazySnapshot
	}
	var magic [len(magicV2)]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		_ = f.Close()
		return nil, err
	}
	if string(magic[:]) != magicV2 {
		_ = f.Close()
		return nil, ErrNotLazySnapshot
	}
	data, err := openSnapshotData(f, size) // takes ownership of f
	if err != nil {
		return nil, err
	}
	cube, err := openLazy(data, opts)
	if err != nil {
		_ = data.close() // the open error is the one worth reporting
		return nil, err
	}
	return cube, nil
}

// snapFrame locates one framed section inside the data: its kind, payload
// byte range, and the offset of the next frame.
type snapFrame struct {
	kind       byte
	payloadOff int64
	payloadLen int64
	next       int64
}

// readFrame parses and CRC-checks the section frame at off. The returned
// payload is a view of the data (zero-copy when mapped).
func readFrame(data snapData, off int64) (snapFrame, []byte, error) {
	frame := &byteReader{section: "frame"}
	size := data.size()
	if off >= size {
		return snapFrame{}, nil, frame.corrupt("missing section kind: EOF at offset %d", off)
	}
	hn := min(int64(1+binary.MaxVarintLen64), size-off)
	hdr, err := data.view(off, hn)
	if err != nil {
		return snapFrame{}, nil, err
	}
	n, w := binary.Uvarint(hdr[1:])
	if w <= 0 {
		return snapFrame{}, nil, frame.corrupt("bad section length at offset %d", off)
	}
	if n > maxSectionBytes {
		return snapFrame{}, nil, frame.corrupt("section length %d exceeds the %d byte cap", n, maxSectionBytes)
	}
	fr := snapFrame{kind: hdr[0], payloadOff: off + 1 + int64(w), payloadLen: int64(n)}
	fr.next = fr.payloadOff + fr.payloadLen + 4
	if fr.next > size {
		return snapFrame{}, nil, frame.corrupt("truncated section payload at offset %d", off)
	}
	payload, err := data.view(fr.payloadOff, fr.payloadLen)
	if err != nil {
		return snapFrame{}, nil, err
	}
	crcBytes, err := data.view(fr.payloadOff+fr.payloadLen, 4)
	if err != nil {
		return snapFrame{}, nil, err
	}
	if got, want := crc32.Checksum(payload, snapshotCRCTable), binary.LittleEndian.Uint32(crcBytes); got != want {
		return snapFrame{}, nil, frame.corrupt("section checksum mismatch (got %08x, want %08x)", got, want)
	}
	return fr, payload, nil
}

// openLazy walks the snapshot's sections, validating every frame and CRC,
// decoding the preamble and ledger, and indexing cuboid sections by key
// without decoding any cells.
func openLazy(data snapData, opts LazyOptions) (*Cube, error) {
	off := int64(len(magicV2))

	// Preamble: the same three-section sequence (and the same payload
	// decoders) the streaming loader uses; only the framing walk differs.
	fr, payload, err := readFrame(data, off)
	if err != nil {
		return nil, err
	}
	if fr.kind != secHeader {
		return nil, (&byteReader{section: "header"}).corrupt("first section has kind %d, want header", fr.kind)
	}
	h, err := decodeHeaderV2(payload)
	if err != nil {
		return nil, err
	}
	fr, payload, err = readFrame(data, fr.next)
	if err != nil {
		return nil, err
	}
	if fr.kind != secHierarchies {
		return nil, (&byteReader{section: "hierarchies"}).corrupt("second section has kind %d, want hierarchies", fr.kind)
	}
	schema, err := decodeHierarchiesV2(payload, h.numDims)
	if err != nil {
		return nil, err
	}
	fr, payload, err = readFrame(data, fr.next)
	if err != nil {
		return nil, err
	}
	if fr.kind != secPlan {
		return nil, (&byteReader{section: "plan"}).corrupt("third section has kind %d, want plan", fr.kind)
	}
	plan, levels, err := decodePlanV2(payload, schema, h)
	if err != nil {
		return nil, err
	}
	p, err := assemblePreambleV2(h, schema, plan, levels)
	if err != nil {
		return nil, err
	}

	b := &lazyBackend{
		data:   data,
		loc:    p.location,
		levels: p.levels,
		secs:   make(map[string]*lazySection, p.numCuboids),
	}
	budget := opts.CacheBytes
	if budget == 0 {
		budget = DefaultLazyCacheBytes
	}
	b.cache.init(budget)

	var ledger *Ledger
	off = fr.next
	for {
		fr, payload, err = readFrame(data, off)
		if err != nil {
			return nil, err
		}
		off = fr.next
		if fr.kind == secEnd {
			break
		}
		switch fr.kind {
		case secLedger:
			if ledger != nil {
				return nil, (&byteReader{section: "frame"}).corrupt("duplicate ledger section")
			}
			if ledger, err = decodeLedgerV2(payload, p.numDims); err != nil {
				return nil, err
			}
		case secCuboid:
			if ledger != nil {
				return nil, (&byteReader{section: "frame"}).corrupt("cuboid section after the ledger section")
			}
			if uint64(len(b.order)) >= p.numCuboids {
				return nil, (&byteReader{section: "frame"}).corrupt(
					"more cuboid sections than the header's %d", p.numCuboids)
			}
			r := &byteReader{section: "cuboid", buf: payload}
			spec, numCells, err := decodeCuboidHeaderV2(r, p.levels)
			if err != nil {
				return nil, err
			}
			if err := validateSpec(spec, p.syms, p.schema); err != nil {
				return nil, err
			}
			key := spec.Key()
			if _, dup := b.secs[key]; dup {
				return nil, (&byteReader{section: "frame"}).corrupt("duplicate cuboid %s", key)
			}
			sec := &lazySection{key: key, spec: spec, numCells: numCells, off: fr.payloadOff, n: fr.payloadLen}
			b.secs[key] = sec
			b.order = append(b.order, sec)
		default:
			return nil, (&byteReader{section: "frame"}).corrupt("unknown section kind %d", fr.kind)
		}
	}
	if uint64(len(b.order)) != p.numCuboids {
		return nil, (&byteReader{section: "frame"}).corrupt(
			"%d cuboid sections, header promised %d", len(b.order), p.numCuboids)
	}
	sort.Slice(b.order, func(i, j int) bool { return b.order[i].key < b.order[j].key })

	cube := p.cube()
	cube.lazy = b
	if ledger != nil {
		cube.ledger = ledger
		cube.Config.DeltaLedger = true
	}
	// Backstop for dropped cubes: release the mapping (and the fallback's
	// fd) when the backend becomes unreachable without an explicit Close —
	// a server that reloads and lets old snapshots age out relies on this.
	runtime.SetFinalizer(b, (*lazyBackend).finalize)
	return cube, nil
}

func (b *lazyBackend) finalize() { _ = b.data.close() }

func (b *lazyBackend) close() error {
	var err error
	b.closeOnce.Do(func() {
		b.closed.Store(true)
		runtime.SetFinalizer(b, nil)
		err = b.data.close()
	})
	return err
}

// view returns a section's payload bytes, refusing after close.
func (b *lazyBackend) view(sec *lazySection) ([]byte, error) {
	if b.closed.Load() {
		return nil, errLazyClosed
	}
	return b.data.view(sec.off, sec.n)
}

// noteErr records the first decode/IO error a touch produced; LazyErr
// exposes it. Later errors are dropped — the first corruption is the one
// that explains everything after it.
func (b *lazyBackend) noteErr(err error) {
	if err == nil {
		return
	}
	b.errMu.Lock()
	if b.firstErr == nil {
		b.firstErr = err
	}
	b.errMu.Unlock()
}

func (b *lazyBackend) lazyErr() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.firstErr
}

// cacheFlight is one in-progress section decode; concurrent first touches
// of the same section wait on done instead of decoding again.
type cacheFlight struct {
	done chan struct{}
	cb   *Cuboid
	err  error
}

// cacheEntry is one resident decoded cuboid with its estimated decoded
// heap cost.
type cacheEntry struct {
	key  string
	cb   *Cuboid
	cost int64
}

// cuboidCache is the decoded-cuboid LRU: a byte-budgeted map + list with
// single-flight decode dedup. The mutex guards only map/list bookkeeping;
// decoding happens outside it.
type cuboidCache struct {
	budget int64 // <0: unbounded

	mu        sync.Mutex
	entries   map[string]*list.Element // values are *cacheEntry
	lru       list.List                // front = most recently used
	flights   map[string]*cacheFlight
	total     int64
	hits      int64
	misses    int64
	evictions int64
}

func (c *cuboidCache) init(budget int64) {
	c.budget = budget
	c.entries = make(map[string]*list.Element)
	c.flights = make(map[string]*cacheFlight)
	c.lru.Init()
}

// cuboid returns a section's decoded cuboid, decoding on first touch. A
// hit refreshes LRU position; a miss decodes outside the cache lock with
// single-flight dedup, then inserts and evicts from the cold end until the
// budget holds (never evicting the only entry, so one oversized section
// still serves). Decode errors are not cached: a later touch retries, and
// the first error is recorded sticky for LazyErr.
func (b *lazyBackend) cuboid(sec *lazySection) (*Cuboid, error) {
	c := &b.cache
	c.mu.Lock()
	if el, ok := c.entries[sec.key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		cb := el.Value.(*cacheEntry).cb
		c.mu.Unlock()
		return cb, nil
	}
	if f, ok := c.flights[sec.key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.cb, f.err
	}
	f := &cacheFlight{done: make(chan struct{})}
	c.flights[sec.key] = f
	c.misses++
	c.mu.Unlock()

	cb, cost, err := b.decodeSection(sec)
	f.cb, f.err = cb, err
	close(f.done)

	c.mu.Lock()
	delete(c.flights, sec.key)
	if err == nil {
		el := c.lru.PushFront(&cacheEntry{key: sec.key, cb: cb, cost: cost})
		c.entries[sec.key] = el
		c.total += cost
		if c.budget >= 0 {
			for c.total > c.budget && c.lru.Len() > 1 {
				back := c.lru.Back()
				e := back.Value.(*cacheEntry)
				c.lru.Remove(back)
				delete(c.entries, e.key)
				c.total -= e.cost
				c.evictions++
			}
		}
	}
	c.mu.Unlock()
	if err != nil {
		b.noteErr(err)
	}
	return cb, err
}

// decodeSection runs the full cuboid decoder over one section payload.
func (b *lazyBackend) decodeSection(sec *lazySection) (*Cuboid, int64, error) {
	payload, err := b.view(sec)
	if err != nil {
		return nil, 0, err
	}
	cb, cost, err := decodeCuboidV2(payload, b.loc, b.levels)
	if err != nil {
		return nil, 0, err
	}
	b.decodedSections.Add(1)
	b.decodedBytes.Add(sec.n)
	return cb, cost, nil
}

// cuboidByKey is the error-less lookup behind (*Cube).Cuboid and Cell:
// unknown keys and decode failures both report absence (failures are
// recorded for LazyErr).
func (b *lazyBackend) cuboidByKey(key string) *Cuboid {
	sec := b.secs[key]
	if sec == nil {
		return nil
	}
	cb, err := b.cuboid(sec)
	if err != nil {
		return nil
	}
	return cb
}

// numCells sums the per-section cell counts recorded in the section
// headers — no cell decode at all.
func (b *lazyBackend) numCells() int {
	n := 0
	for _, sec := range b.order {
		n += sec.numCells
	}
	return n
}

// scanSection walks a section's cells once — prefixes decoded, flat graphs
// skipped — collecting the redundant census and whether cell keys are
// stored sorted. The result is cached on the section.
func (b *lazyBackend) scanSection(sec *lazySection) (*sectionScan, error) {
	if s := sec.scan.Load(); s != nil {
		return s, nil
	}
	payload, err := b.view(sec)
	if err != nil {
		return nil, err
	}
	r := &byteReader{section: "cuboid", buf: payload}
	if _, _, err := decodeCuboidHeaderV2(r, b.levels); err != nil {
		return nil, err
	}
	s := &sectionScan{sorted: true}
	prev := ""
	for ci := 0; ci < sec.numCells; ci++ {
		values, _, flags, _, err := decodeCellPrefixV2(r)
		if err != nil {
			return nil, err
		}
		key := cellKey(values)
		if ci > 0 && key <= prev {
			s.sorted = false
		}
		prev = key
		if flags&1 != 0 {
			s.redundant++
		}
		if flags&2 != 0 {
			if err := skipFlatGraph(r); err != nil {
				return nil, err
			}
		}
	}
	if r.rem() != 0 {
		return nil, r.corrupt("%d trailing bytes", r.rem())
	}
	sec.scan.Store(s)
	return s, nil
}

// summaries is the flat-scan CuboidSummaries: per-section cell counts from
// the headers, redundant censuses from cached scans. Any scan failure
// reports nil after recording the error for LazyErr.
func (b *lazyBackend) summaries() ([]CuboidSummary, error) {
	out := make([]CuboidSummary, 0, len(b.order))
	for _, sec := range b.order {
		s, err := b.scanSection(sec)
		if err != nil {
			return nil, err
		}
		out = append(out, CuboidSummary{
			Key:       sec.key,
			Item:      sec.spec.Item,
			PathLevel: sec.spec.PathLevel,
			Cells:     sec.numCells,
			Redundant: s.redundant,
		})
	}
	return out, nil
}

// topExceptions collects every exception by flat-scanning the mapped
// sections in sorted key order: cell prefixes and flat graph columns are
// decoded, but no pointer tree is built and nothing enters the LRU —
// the Node chains come from flowgraph.FlatExceptions. Cells are emitted
// in sorted key order, matching the eager walk exactly.
func (b *lazyBackend) topExceptions() ([]RankedException, error) {
	var out []RankedException
	for _, sec := range b.order {
		payload, err := b.view(sec)
		if err != nil {
			return nil, err
		}
		r := &byteReader{section: "cuboid", buf: payload}
		if _, _, err := decodeCuboidHeaderV2(r, b.levels); err != nil {
			return nil, err
		}
		type cellExc struct {
			key    string
			values []hierarchy.NodeID
			xs     []flowgraph.Exception
		}
		var cells []cellExc
		for ci := 0; ci < sec.numCells; ci++ {
			values, _, flags, _, err := decodeCellPrefixV2(r)
			if err != nil {
				return nil, err
			}
			if flags&2 == 0 {
				continue
			}
			flat, err := decodeFlatGraph(r)
			if err != nil {
				return nil, err
			}
			if len(flat.ExcNode) == 0 {
				continue
			}
			xs, err := flowgraph.FlatExceptions(flat)
			if err != nil {
				return nil, r.corrupt("cell %d: %v", ci, err)
			}
			cells = append(cells, cellExc{key: cellKey(values), values: values, xs: xs})
		}
		if r.rem() != 0 {
			return nil, r.corrupt("%d trailing bytes", r.rem())
		}
		sort.SliceStable(cells, func(i, j int) bool { return cells[i].key < cells[j].key })
		for _, ce := range cells {
			for _, x := range ce.xs {
				out = append(out, RankedException{Spec: sec.spec, Values: ce.values, Exception: x})
			}
		}
	}
	return out, nil
}

// validate runs the eager per-cuboid validation over every section,
// decoding each through the cache (warming and evicting as it goes).
func (b *lazyBackend) validate(c *Cube) error {
	for _, sec := range b.order {
		cb, err := b.cuboid(sec)
		if err != nil {
			return err
		}
		if err := c.validateCuboid(cb); err != nil {
			return err
		}
	}
	return nil
}

// sortedAll decodes every section through the cache in key order — the
// generic lazy stand-in for sortedCuboids. Sections that fail to decode
// are skipped after recording the error; callers that need failures as
// errors (Validate, Save, Materialize) have their own paths.
func (b *lazyBackend) sortedAll() []*Cuboid {
	out := make([]*Cuboid, 0, len(b.order))
	for _, sec := range b.order {
		cb, err := b.cuboid(sec)
		if err != nil {
			continue
		}
		out = append(out, cb)
	}
	return out
}

// materialize decodes the whole snapshot into a fresh eager cube the
// caller exclusively owns: sections decode in parallel, bypassing the
// shared cache so nothing is aliased with other readers of the lazy cube.
func (b *lazyBackend) materialize(c *Cube) (*Cube, error) {
	if b.closed.Load() {
		return nil, errLazyClosed
	}
	payloads := make([][]byte, len(b.order))
	for i, sec := range b.order {
		p, err := b.view(sec)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	cuboids, err := decodeCuboidsV2(payloads, b.loc, b.levels, 0)
	if err != nil {
		return nil, err
	}
	out := &Cube{
		Schema:   c.Schema,
		Config:   c.Config,
		Symbols:  c.Symbols.Clone(),
		Mining:   c.Mining,
		Cuboids:  make(map[string]*Cuboid, len(cuboids)),
		minCount: c.minCount,
		appended: c.appended,
		ledger:   c.ledger.clone(),
	}
	for _, cb := range cuboids {
		out.Cuboids[cb.Spec.Key()] = cb
	}
	return out, nil
}

// save writes the lazy cube as v2 snapshot bytes identical to an eager
// load-then-Save of the same file. Metadata sections are re-encoded from
// the decoded preamble state (decode→encode is a fixed point); cuboid
// sections whose cells are stored sorted — every file our Save wrote — are
// raw payload copies straight from the mapping, and unsorted ones (foreign
// writers) fall back to decode + re-encode, which re-sorts exactly as the
// eager path would.
func (b *lazyBackend) save(c *Cube, w io.Writer) error {
	header, hiers, plan := encodeMetaSectionsV2(c, len(b.order))
	if _, err := io.WriteString(w, magicV2); err != nil {
		return err
	}
	if err := writeSection(w, secHeader, header); err != nil {
		return err
	}
	if err := writeSection(w, secHierarchies, hiers); err != nil {
		return err
	}
	if err := writeSection(w, secPlan, plan); err != nil {
		return err
	}
	for _, sec := range b.order {
		payload, err := b.view(sec)
		if err != nil {
			return err
		}
		s, scanErr := b.scanSection(sec)
		if scanErr == nil && s.sorted {
			if err := writeSection(w, secCuboid, payload); err != nil {
				return err
			}
			continue
		}
		// Unsorted cells, or a scan that failed structurally: the full
		// decoder either re-sorts (via the cell map + SortedCells) or
		// reports the real corruption.
		cb, _, err := decodeCuboidV2(payload, b.loc, b.levels)
		if err != nil {
			b.noteErr(err)
			return err
		}
		if err := writeSection(w, secCuboid, encodeCuboidV2(cb)); err != nil {
			return err
		}
	}
	if c.ledger != nil {
		if err := writeSection(w, secLedger, encodeLedgerV2(c.ledger)); err != nil {
			return err
		}
	}
	return writeSection(w, secEnd, nil)
}

// stats snapshots the backend's gauges.
func (b *lazyBackend) stats() LazyStats {
	s := LazyStats{
		Mapped:          snapMapped,
		MappedBytes:     b.data.size(),
		BudgetBytes:     b.cache.budget,
		Sections:        len(b.order),
		DecodedSections: b.decodedSections.Load(),
		DecodedBytes:    b.decodedBytes.Load(),
	}
	c := &b.cache
	c.mu.Lock()
	s.CachedSections = c.lru.Len()
	s.CachedBytes = c.total
	s.CacheHits = c.hits
	s.CacheMisses = c.misses
	s.Evictions = c.evictions
	c.mu.Unlock()
	return s
}

// LazyStats reports the lazy serving state of the cube; ok is false for
// eagerly loaded (or built) cubes.
func (c *Cube) LazyStats() (stats LazyStats, ok bool) {
	if c.lazy == nil {
		return LazyStats{}, false
	}
	return c.lazy.stats(), true
}

// LazyErr reports the first decode or IO error a lazy touch has produced
// (always a *CorruptSnapshotError for decode failures), or nil. Error-less
// query paths — Cell, QueryGraph, CuboidSummaries, TopExceptions — report
// absence when a section fails to decode; serving layers check LazyErr to
// distinguish "not materialized" from "snapshot corrupt". Always nil for
// eager cubes.
func (c *Cube) LazyErr() error {
	if c.lazy == nil {
		return nil
	}
	return c.lazy.lazyErr()
}

// Close releases a lazily loaded cube's mapping (and, under the fallback,
// its file descriptor). It is idempotent, must not race in-flight queries
// (the same contract snapshot swapping has), and is a no-op for eager
// cubes; dropped lazy cubes are also released by a finalizer, so Close is
// an optimization for deterministic release, not a correctness requirement.
func (c *Cube) Close() error {
	if c.lazy == nil {
		return nil
	}
	return c.lazy.close()
}

// Materialize returns a fully decoded eager cube the caller exclusively
// owns. For a lazy cube it decodes every section fresh (in parallel,
// bypassing the shared LRU); for an eager cube it is Clone. Mutating
// pipelines over lazy snapshots — incr.ApplyDelta, MarkRedundancy,
// Compress, FilterCells — run on the materialized copy.
func (c *Cube) Materialize() (*Cube, error) {
	if c.lazy == nil {
		return c.Clone(), nil
	}
	return c.lazy.materialize(c)
}

// encodeMetaSectionsV2 builds the header, hierarchies and plan section
// payloads from the cube's decoded state — shared by the eager SaveWith
// and the lazy save so the metadata encoding exists once.
func encodeMetaSectionsV2(c *Cube, numCuboids int) (header, hiers, plan []byte) {
	header = binary.AppendUvarint(header, formatVersionV2)
	header = binary.AppendVarint(header, c.minCount)
	header = binary.LittleEndian.AppendUint64(header, math.Float64bits(c.Config.Epsilon))
	header = binary.LittleEndian.AppendUint64(header, math.Float64bits(c.Config.Tau))
	header = binary.AppendUvarint(header, uint64(len(c.Schema.Dims)))
	header = binary.AppendUvarint(header, uint64(len(c.Symbols.PathLevels())))
	header = binary.AppendUvarint(header, uint64(numCuboids))

	hiers = appendHierarchyV2(hiers, c.Schema.Location)
	for _, h := range c.Schema.Dims {
		hiers = appendHierarchyV2(hiers, h)
	}

	dimLevels := c.Symbols.DimLevels()
	plan = binary.AppendUvarint(plan, uint64(len(dimLevels)))
	for _, levels := range dimLevels {
		plan = binary.AppendUvarint(plan, uint64(len(levels)))
		for _, l := range levels {
			plan = binary.AppendUvarint(plan, uint64(l))
		}
	}
	pathLevels := c.Symbols.PathLevels()
	plan = binary.AppendUvarint(plan, uint64(len(pathLevels)))
	for _, pl := range pathLevels {
		nodes := pl.Cut.Nodes()
		plan = binary.AppendUvarint(plan, uint64(len(nodes)))
		for _, nd := range nodes {
			plan = binary.AppendUvarint(plan, uint64(uint32(nd)))
		}
		if pl.Time.Any {
			plan = append(plan, 1)
		} else {
			plan = append(plan, 0)
		}
		plan = binary.AppendVarint(plan, pl.Time.Grain)
	}
	return header, hiers, plan
}
