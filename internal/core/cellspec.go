package core

import (
	"fmt"
	"strings"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Textual cell addressing shared by the CLI tools and the query server: a
// cell is named by comma-separated "dimension=concept" pairs, with '*' (or
// omission) aggregating a dimension away. The item level of the addressed
// cuboid is implied by the level each named concept sits at.

// ParseCellSpec parses a cell specification like "product=shoes,brand=*"
// against the schema. It returns the implied item level (0 for aggregated
// dimensions) and the per-dimension values (hierarchy.Root for '*').
// Unmentioned dimensions are aggregated. An empty spec addresses the apex
// cell.
func ParseCellSpec(schema *pathdb.Schema, spec string) (ItemLevel, []hierarchy.NodeID, error) {
	il := make(ItemLevel, len(schema.Dims))
	values := make([]hierarchy.NodeID, len(schema.Dims))
	for i := range values {
		values[i] = hierarchy.Root
	}
	if strings.TrimSpace(spec) == "" {
		return il, values, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, concept, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad cell entry %q, want dim=concept", pair)
		}
		d := schema.DimIndex(name)
		if d < 0 {
			return nil, nil, fmt.Errorf("unknown dimension %q", name)
		}
		if concept == "*" {
			il[d] = 0
			values[d] = hierarchy.Root
			continue
		}
		id, ok := schema.Dims[d].Lookup(concept)
		if !ok {
			return nil, nil, fmt.Errorf("unknown concept %q in dimension %q", concept, name)
		}
		values[d] = id
		il[d] = schema.Dims[d].Level(id)
	}
	return il, values, nil
}

// FormatCell renders per-dimension values as the canonical cell
// specification string, the inverse of ParseCellSpec up to dimension
// ordering and explicit '*' entries.
func FormatCell(schema *pathdb.Schema, values []hierarchy.NodeID) string {
	parts := make([]string, len(values))
	for d, v := range values {
		parts[d] = schema.Dims[d].Dimension() + "=" + schema.Dims[d].Name(v)
	}
	return strings.Join(parts, ",")
}
