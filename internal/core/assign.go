package core

import (
	"encoding/binary"
	"math/bits"
	"sort"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// assignPlan is the precomputed state for populate's record→cell assignment
// scan. It replaces the per-record fmt-formatted string keys with fixed-width
// packed keys (a single uint64 when every dimension's node ids fit in 64 bits
// together, a fixed-width binary string otherwise), hoists the per-dimension
// ancestor lookups so each (dimension, level) pair is resolved once per
// record regardless of how many cuboids share it, and numbers every cell
// with a global slot id so workers can collect tids into plain slices.
//
// Cell values are hierarchy node ids ('*' = hierarchy.Root = 0), so a packed
// key is injective as long as each dimension gets ⌈log2(h.Len())⌉ bits.
type assignPlan struct {
	schema *pathdb.Schema
	// dimLevels lists, per dimension, the sorted distinct non-'*' levels any
	// target cuboid uses; anc rows in assign are indexed the same way.
	dimLevels [][]int
	targets   []assignTarget
	// slots maps global slot id → cell, in sorted cuboid/cell order, so the
	// bucket merge visits cells deterministically.
	slots  []*Cell
	packed bool
	shifts []uint // per-dimension bit offset within the uint64 key
}

// maxPackedKeyBits is the widest combined key that still uses the uint64
// fast path; schemas needing more fall back to fixed-width binary-string
// keys. A var so tests can force the fallback on small schemas.
var maxPackedKeyBits = 64

// assignTarget is one materialized cuboid's view of the plan: where each
// dimension's value comes from, and the cell lookup table keyed by packed key.
type assignTarget struct {
	// levelIdx gives, per dimension, the row of the hoisted ancestor table
	// holding this cuboid's value, or -1 for a '*' dimension.
	levelIdx []int
	packed   map[uint64]int32
	binary   map[string]int32
}

func newAssignPlan(schema *pathdb.Schema, targets []*Cuboid) *assignPlan {
	m := len(schema.Dims)
	p := &assignPlan{schema: schema, dimLevels: make([][]int, m)}
	for _, cb := range targets {
		for d, l := range cb.Spec.Item {
			if l == 0 || containsInt(p.dimLevels[d], l) {
				continue
			}
			p.dimLevels[d] = append(p.dimLevels[d], l)
		}
	}
	for d := range p.dimLevels {
		sort.Ints(p.dimLevels[d])
	}

	// Per-dimension bit widths decide whether every cell key fits one uint64.
	p.shifts = make([]uint, m)
	total := uint(0)
	for d, h := range schema.Dims {
		w := uint(bits.Len(uint(h.Len() - 1)))
		if w == 0 {
			w = 1
		}
		p.shifts[d] = total
		total += w
	}
	p.packed = total <= uint(maxPackedKeyBits)

	for _, cb := range targets {
		t := assignTarget{levelIdx: make([]int, m)}
		for d, l := range cb.Spec.Item {
			t.levelIdx[d] = -1
			if l == 0 {
				continue
			}
			for li, have := range p.dimLevels[d] {
				if have == l {
					t.levelIdx[d] = li
				}
			}
		}
		if p.packed {
			t.packed = make(map[uint64]int32, len(cb.Cells))
		} else {
			t.binary = make(map[string]int32, len(cb.Cells))
		}
		for _, cell := range cb.SortedCells() {
			slot := int32(len(p.slots))
			p.slots = append(p.slots, cell)
			if p.packed {
				t.packed[p.packKey(cell.Values)] = slot
			} else {
				buf := make([]byte, 4*m)
				p.putBinaryKey(buf, cell.Values)
				t.binary[string(buf)] = slot
			}
		}
		p.targets = append(p.targets, t)
	}
	return p
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (p *assignPlan) packKey(values []hierarchy.NodeID) uint64 {
	var key uint64
	for d, v := range values {
		key |= uint64(uint32(v)) << p.shifts[d]
	}
	return key
}

func (p *assignPlan) putBinaryKey(buf []byte, values []hierarchy.NodeID) {
	for d, v := range values {
		binary.LittleEndian.PutUint32(buf[4*d:], uint32(v))
	}
}

// assign routes records [lo, hi) of the database to their cells, appending
// each matching tid to bucket[slot]. It allocates nothing per record: the
// hoisted ancestor table and the key buffer are reused across the whole
// range, and packed-map probes with a string(buf) conversion used only as a
// map index do not escape.
func (p *assignPlan) assign(db *pathdb.DB, lo, hi int, bucket [][]int32) {
	m := len(p.dimLevels)
	anc := make([][]hierarchy.NodeID, m)
	for d := range anc {
		anc[d] = make([]hierarchy.NodeID, len(p.dimLevels[d]))
	}
	var keyBuf []byte
	if !p.packed {
		keyBuf = make([]byte, 4*m)
	}
	for tid := lo; tid < hi; tid++ {
		rec := &db.Records[tid]
		for d, levels := range p.dimLevels {
			h := p.schema.Dims[d]
			for li, l := range levels {
				anc[d][li] = h.AncestorAt(rec.Dims[d], l)
			}
		}
		for ti := range p.targets {
			t := &p.targets[ti]
			var slot int32
			var ok bool
			if p.packed {
				var key uint64
				for d, li := range t.levelIdx {
					if li >= 0 {
						key |= uint64(uint32(anc[d][li])) << p.shifts[d]
					}
				}
				slot, ok = t.packed[key]
			} else {
				for d, li := range t.levelIdx {
					v := hierarchy.Root
					if li >= 0 {
						v = anc[d][li]
					}
					binary.LittleEndian.PutUint32(keyBuf[4*d:], uint32(v))
				}
				slot, ok = t.binary[string(keyBuf)]
			}
			if ok {
				bucket[slot] = append(bucket[slot], int32(tid))
			}
		}
	}
}
