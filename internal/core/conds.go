package core

// Condition cache: the per-cell conditional pin-lists the exception miner
// checked, remembered so the incremental path (internal/incr) can re-derive
// a cell's conditions from a batch instead of re-mining them from scratch.
//
// The cache is in-memory bookkeeping only — it is not serialized into
// snapshots and has no effect on Save bytes. A cube built with
// Config.MineExceptions warms it during mineExceptions; a cube loaded from
// a snapshot starts cold, and the incremental path falls back to a full
// per-cell re-mine (which warms the entry for next time). Entries are
// immutable once stored; Clone shares them behind fresh maps.

import (
	"sort"

	"flowcube/internal/flowgraph"
)

// CondSet is one cell's cached exception conditions: the pin-lists passed
// to MineExceptionsFor, plus a canonical-key index for membership tests.
type CondSet struct {
	// Pins holds the conditional pin-lists. Read-only.
	Pins [][]flowgraph.StagePin

	keys map[string]bool
}

// NewCondSet indexes the given pin-lists. The caller must not mutate pins
// afterwards; duplicates (same canonical key) are kept in Pins but count
// once for Has/Len.
func NewCondSet(pins [][]flowgraph.StagePin) *CondSet {
	s := &CondSet{Pins: pins, keys: make(map[string]bool, len(pins))}
	for _, p := range pins {
		s.keys[CondPinKey(p)] = true
	}
	return s
}

// Has reports whether an equivalent pin-list (same pins, any order) is in
// the set. A nil set has nothing.
func (s *CondSet) Has(pins []flowgraph.StagePin) bool {
	return s != nil && s.keys[CondPinKey(pins)]
}

// Len reports the number of distinct conditions.
func (s *CondSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.keys)
}

// CondPinKey renders a pin-list's canonical identity: pins sorted by depth,
// each encoded with its depth, location, and duration. Two pin-lists get
// the same key exactly when the exception miner treats them as the same
// condition.
func CondPinKey(pins []flowgraph.StagePin) string {
	cc := append([]flowgraph.StagePin(nil), pins...)
	sort.Slice(cc, func(i, j int) bool { return cc[i].Depth < cc[j].Depth })
	var b []byte
	for _, pin := range cc {
		b = append(b, byte(pin.Depth), byte(pin.Location))
		if pin.DurAny {
			b = append(b, '*')
		} else {
			for s := 0; s < 8; s++ {
				b = append(b, byte(pin.Duration>>(8*s)))
			}
		}
	}
	return string(b)
}

// CachedConds returns the cached condition set of a cell (identified by its
// cuboid spec key and CellKey), with ok=false on a cold cache.
func (c *Cube) CachedConds(specKey, cellKey string) (*CondSet, bool) {
	cells := c.condCache[specKey]
	if cells == nil {
		return nil, false
	}
	s, ok := cells[cellKey]
	return s, ok
}

// SetCachedConds records a cell's condition set, replacing any previous
// entry with a fresh one (entries are immutable; concurrent readers of the
// old entry are unaffected).
func (c *Cube) SetCachedConds(specKey, cellKey string, pins [][]flowgraph.StagePin) {
	if c.condCache == nil {
		c.condCache = make(map[string]map[string]*CondSet)
	}
	cells := c.condCache[specKey]
	if cells == nil {
		cells = make(map[string]*CondSet)
		c.condCache[specKey] = cells
	}
	cells[cellKey] = NewCondSet(pins)
}

// DropCondCache empties the cache, forcing the incremental path back onto
// the full per-cell re-mine. Tests use it to compare the two paths.
func (c *Cube) DropCondCache() { c.condCache = nil }

// cloneCondCache shares the immutable entries behind fresh maps.
func (c *Cube) cloneCondCache() map[string]map[string]*CondSet {
	if c.condCache == nil {
		return nil
	}
	out := make(map[string]map[string]*CondSet, len(c.condCache))
	for spec, cells := range c.condCache {
		n := make(map[string]*CondSet, len(cells))
		for ck, s := range cells {
			n[ck] = s
		}
		out[spec] = n
	}
	return out
}
