package core_test

import (
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
)

// partialExample materializes the running example restricted to the given
// cuboids (partial materialization, §5) with δ=2.
func partialExample(t *testing.T, specs []core.CuboidSpec) (*paperex.Example, *core.Cube) {
	t.Helper()
	return buildExample(t, core.Config{MinCount: 2, Cuboids: specs})
}

func equalValues(a, b []hierarchy.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryGraphPrefersClosestAncestor pins the breadth-first inference
// order: when a 1-step and a 2-step generalization of a missing cell are
// both materialized, the 1-step ancestor must answer.
func TestQueryGraphPrefersClosestAncestor(t *testing.T) {
	ex, cube := partialExample(t, []core.CuboidSpec{
		// The queried cuboid ⟨(2,2)⟩ is deliberately not materialized.
		{Item: core.ItemLevel{1, 2}, PathLevel: 0}, // 1 step up in product
		{Item: core.ItemLevel{2, 1}, PathLevel: 0}, // 1 step up in brand
		{Item: core.ItemLevel{1, 1}, PathLevel: 0}, // 2 steps up
		{Item: core.ItemLevel{0, 0}, PathLevel: 0}, // apex
	})
	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{
		ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("nike"),
	}
	g, src, exact, ok := cube.QueryGraph(spec, values)
	if !ok {
		t.Fatal("query failed entirely")
	}
	if exact {
		t.Fatal("query reported exact for an unmaterialized cuboid")
	}
	// Both 1-step ancestors exist: (clothing, nike) and (shoes, sports).
	// BFS must return one of them, never the 2-step (clothing, sports) or
	// the apex.
	wantA := []hierarchy.NodeID{ex.Product.MustLookup("clothing"), ex.Brand.MustLookup("nike")}
	wantB := []hierarchy.NodeID{ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("sports")}
	if !equalValues(src.Values, wantA) && !equalValues(src.Values, wantB) {
		t.Errorf("answered from %s, want a 1-step generalization (clothing,nike) or (shoes,sports)",
			core.FormatCell(cube.Schema, src.Values))
	}
	if g == nil || g.Paths() != src.Count {
		t.Errorf("graph paths != source count %d", src.Count)
	}

	// Remove both 1-step cuboids: the 2-step generalization must now win
	// over the apex.
	delete(cube.Cuboids, core.CuboidSpec{Item: core.ItemLevel{1, 2}, PathLevel: 0}.Key())
	delete(cube.Cuboids, core.CuboidSpec{Item: core.ItemLevel{2, 1}, PathLevel: 0}.Key())
	_, src, exact, ok = cube.QueryGraph(spec, values)
	if !ok || exact {
		t.Fatalf("2-step query failed: ok=%v exact=%v", ok, exact)
	}
	want2 := []hierarchy.NodeID{ex.Product.MustLookup("clothing"), ex.Brand.MustLookup("sports")}
	if !equalValues(src.Values, want2) {
		t.Errorf("answered from %s, want the 2-step (clothing,sports) before the apex",
			core.FormatCell(cube.Schema, src.Values))
	}
}

// TestQueryGraphFullyCompressedFallsBackToApex pins the other end of the
// inference chain: when every intermediate cell is compressed away as
// redundant, queries drain all the way to the apex.
func TestQueryGraphFullyCompressedFallsBackToApex(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})

	// Simulate maximal compression: every cell with a concrete dimension
	// value is redundant; only apex-item-level cells survive.
	for _, cb := range cube.Cuboids {
		concrete := false
		for _, l := range cb.Spec.Item {
			if l > 0 {
				concrete = true
			}
		}
		if !concrete {
			continue
		}
		for _, cell := range cb.Cells {
			cell.Redundant = true
		}
	}
	if removed := cube.Compress(); removed == 0 {
		t.Fatal("nothing compressed; fixture broken")
	}

	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{
		ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("nike"),
	}
	g, src, exact, ok := cube.QueryGraph(spec, values)
	if !ok {
		t.Fatal("fully compressed cube failed to answer")
	}
	if exact {
		t.Error("compressed cell reported exact")
	}
	for d, v := range src.Values {
		if v != hierarchy.Root {
			t.Errorf("dimension %d answered from node %d, want the apex '*'", d, v)
		}
	}
	if g.Paths() != int64(ex.DB.Len()) {
		t.Errorf("apex graph has %d paths, want the whole database (%d)", g.Paths(), ex.DB.Len())
	}
}

// TestMarkRedundancySentinel pins the Similarity semantics: cells with no
// materialized parents keep SimilarityUnknown instead of a fabricated
// ϕ = 1 that would read as "maximally redundant" in summaries and
// persisted output.
func TestMarkRedundancySentinel(t *testing.T) {
	// Materialize only the leaf-level cuboid: its cells have no
	// materialized item-lattice parents to compare against.
	_, cube := partialExample(t, []core.CuboidSpec{
		{Item: core.ItemLevel{2, 2}, PathLevel: 0},
	})
	if n := cube.MarkRedundancy(0.5); n != 0 {
		t.Errorf("MarkRedundancy marked %d cells redundant with no parents materialized", n)
	}
	cb := cube.Cuboid(core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0})
	if cb == nil || len(cb.Cells) == 0 {
		t.Fatal("fixture cuboid empty")
	}
	for _, cell := range cb.Cells {
		if cell.Similarity != core.SimilarityUnknown {
			t.Errorf("cell %v similarity = %v, want SimilarityUnknown", cell.Values, cell.Similarity)
		}
		if cell.Redundant {
			t.Errorf("cell %v marked redundant with no parents", cell.Values)
		}
	}

	// With the full lattice materialized, real similarities in (0, 1]
	// appear for cells with parents — and the apex keeps the sentinel.
	ex2, cube2 := buildExample(t, core.Config{MinCount: 2})
	cube2.MarkRedundancy(0.5)
	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	cell, ok := cube2.Cell(spec, []hierarchy.NodeID{
		ex2.Product.MustLookup("shoes"), ex2.Brand.MustLookup("nike"),
	})
	if !ok {
		t.Fatal("(shoes, nike) missing")
	}
	if cell.Similarity <= 0 || cell.Similarity > 1 {
		t.Errorf("measured similarity = %v, want in (0, 1]", cell.Similarity)
	}
	apexSpec := core.CuboidSpec{Item: core.ItemLevel{0, 0}, PathLevel: 0}
	apex, ok := cube2.Cell(apexSpec, []hierarchy.NodeID{hierarchy.Root, hierarchy.Root})
	if !ok {
		t.Fatal("apex cell missing")
	}
	if apex.Similarity != core.SimilarityUnknown {
		t.Errorf("apex similarity = %v, want SimilarityUnknown", apex.Similarity)
	}
}
