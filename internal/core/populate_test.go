package core_test

import (
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/paperex"
)

// TestPopulateParallelMatchesSequential: the sharded record→cell assignment
// must produce byte-identical cubes at every worker count — the same tids in
// the same order, identical flowgraphs, identical snapshots.
func TestPopulateParallelMatchesSequential(t *testing.T) {
	base := core.Config{
		MinCount:       2,
		Epsilon:        0.1,
		MineExceptions: true,
		Workers:        1,
	}
	_, seq := buildExample(t, base)
	want, wantLen := saveDigest(t, seq)
	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		_, cube := buildExample(t, cfg)
		got, gotLen := saveDigest(t, cube)
		if got != want {
			t.Fatalf("workers=%d: snapshot %x (%d bytes) differs from sequential %x (%d bytes)",
				workers, got, gotLen, want, wantLen)
		}
	}
}

// TestPopulateBinaryKeyFallback: schemas too wide for a uint64 key take the
// fixed-width binary-string path; forcing it must not change the cube, with
// or without workers.
func TestPopulateBinaryKeyFallback(t *testing.T) {
	base := core.Config{MinCount: 2, Workers: 1}
	_, packed := buildExample(t, base)
	want, _ := saveDigest(t, packed)
	restore := core.SetMaxPackedKeyBitsForTest(0)
	defer restore()
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		_, cube := buildExample(t, cfg)
		got, _ := saveDigest(t, cube)
		if got != want {
			t.Fatalf("workers=%d: binary-key snapshot differs from packed-key snapshot", workers)
		}
	}
}

// TestPopulateBenchClosures: the benchmark hooks rebuild exactly the state
// Build's populate leaves behind, and stay stable across repeated runs.
func TestPopulateBenchClosures(t *testing.T) {
	ex := paperex.New()
	cfg := core.Config{MinCount: 2, Plan: examplePlan(ex)}
	_, full := buildExample(t, cfg)
	want, _ := saveDigest(t, full)

	cube, run, assign, err := core.PopulateBench(ex.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		run()
		got, _ := saveDigest(t, cube)
		if got != want {
			t.Fatalf("run %d: benched cube snapshot differs from Build's", i)
		}
	}
	// assign alone leaves graphs unset; a following run must still converge.
	assign()
	run()
	if got, _ := saveDigest(t, cube); got != want {
		t.Fatalf("assign+run: benched cube snapshot differs from Build's")
	}
}
