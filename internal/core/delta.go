package core

// Delta-maintenance support (see internal/incr and DESIGN.md §9): the
// sub-δ count ledger that lets an append batch admit newly-frequent iceberg
// cells without rescanning the base database, a deep Clone so a serving
// layer can delta-patch a copy while readers keep the original, and the
// exported cell/tid primitives the incr package drives the update with.
//
// This file is on the immutcube allowlist: everything here is build-phase
// machinery in the same sense as build.go — it runs on cubes no reader
// shares yet (a fresh Build, or a Clone made expressly to be patched).

import (
	"sort"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// Ledger is the auxiliary sub-δ count store: for every materialized item
// level, the exact path count of every dimension-value combination that
// occurs in the database but falls below the iceberg threshold. A cube
// built with Config.DeltaLedger carries it (and persists it in snapshot
// sections), so ApplyDelta can decide cell admission — base count plus
// batch count crossing δ — in O(1) per touched combination instead of a
// base-database scan.
type Ledger struct {
	levels map[string]*ledgerLevel
}

type ledgerLevel struct {
	item    ItemLevel
	entries map[string]*ledgerEntry
}

type ledgerEntry struct {
	values []hierarchy.NodeID
	count  int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{levels: make(map[string]*ledgerLevel)}
}

// Count reports the recorded sub-δ count of a combination (0 when absent —
// absent means the combination never occurred below threshold).
func (l *Ledger) Count(il ItemLevel, values []hierarchy.NodeID) int64 {
	if l == nil {
		return 0
	}
	lv := l.levels[il.Key()]
	if lv == nil {
		return 0
	}
	e := lv.entries[cellKey(values)]
	if e == nil {
		return 0
	}
	return e.count
}

// Bump adds n to a combination's count, creating the entry if needed, and
// returns the new count.
func (l *Ledger) Bump(il ItemLevel, values []hierarchy.NodeID, n int64) int64 {
	key := il.Key()
	lv := l.levels[key]
	if lv == nil {
		lv = &ledgerLevel{item: append(ItemLevel(nil), il...), entries: make(map[string]*ledgerEntry)}
		l.levels[key] = lv
	}
	ck := cellKey(values)
	e := lv.entries[ck]
	if e == nil {
		e = &ledgerEntry{values: append([]hierarchy.NodeID(nil), values...)}
		lv.entries[ck] = e
	}
	e.count += n
	return e.count
}

// Remove drops a combination (called when it crosses δ and becomes a cell).
func (l *Ledger) Remove(il ItemLevel, values []hierarchy.NodeID) {
	if lv := l.levels[il.Key()]; lv != nil {
		delete(lv.entries, cellKey(values))
	}
}

// Size reports the total number of sub-δ entries across item levels.
func (l *Ledger) Size() int {
	if l == nil {
		return 0
	}
	n := 0
	for _, lv := range l.levels {
		n += len(lv.entries)
	}
	return n
}

// clone deep-copies the ledger; nil stays nil.
func (l *Ledger) clone() *Ledger {
	if l == nil {
		return nil
	}
	c := NewLedger()
	for k, lv := range l.levels {
		nlv := &ledgerLevel{item: lv.item, entries: make(map[string]*ledgerEntry, len(lv.entries))}
		for ck, e := range lv.entries {
			nlv.entries[ck] = &ledgerEntry{values: e.values, count: e.count}
		}
		c.levels[k] = nlv
	}
	return c
}

// sortedLevels returns the ledger's item levels in ascending key order, for
// deterministic encoding.
func (l *Ledger) sortedLevels() []*ledgerLevel {
	keys := make([]string, 0, len(l.levels))
	for k := range l.levels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*ledgerLevel, len(keys))
	for i, k := range keys {
		out[i] = l.levels[k]
	}
	return out
}

// sortedEntries returns one level's entries in ascending cell-key order.
func (lv *ledgerLevel) sortedEntries() []*ledgerEntry {
	keys := make([]string, 0, len(lv.entries))
	for k := range lv.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*ledgerEntry, len(keys))
	for i, k := range keys {
		out[i] = lv.entries[k]
	}
	return out
}

// Ledger returns the cube's sub-δ ledger, or nil when the cube was built
// without Config.DeltaLedger.
func (c *Cube) Ledger() *Ledger { return c.ledger }

// ItemLevels returns the distinct item abstraction levels of the
// materialized cuboids, sorted by key.
func (c *Cube) ItemLevels() []ItemLevel {
	seen := make(map[string]ItemLevel)
	for _, cb := range c.Cuboids {
		seen[cb.Spec.Item.Key()] = cb.Spec.Item
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ItemLevel, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// buildLedger populates the sub-δ ledger from the base database: one scan
// per materialized item level (levels are independent, so they spread
// across Config.Workers), counting every combination and then dropping the
// ones at or above the iceberg threshold — those are materialized cells and
// carry their counts themselves.
func (c *Cube) buildLedger(db *pathdb.DB) {
	levels := c.ItemLevels()
	built := make([]*ledgerLevel, len(levels))
	c.forEach(len(levels), func(i int) {
		il := levels[i]
		lv := &ledgerLevel{item: append(ItemLevel(nil), il...), entries: make(map[string]*ledgerEntry)}
		values := make([]hierarchy.NodeID, len(il))
		for r := range db.Records {
			rec := &db.Records[r]
			for d, l := range il {
				if l == 0 {
					values[d] = hierarchy.Root
				} else {
					values[d] = c.Schema.Dims[d].AncestorAt(rec.Dims[d], l)
				}
			}
			ck := cellKey(values)
			e := lv.entries[ck]
			if e == nil {
				e = &ledgerEntry{values: append([]hierarchy.NodeID(nil), values...)}
				lv.entries[ck] = e
			}
			e.count++
		}
		for ck, e := range lv.entries {
			if e.count >= c.minCount {
				delete(lv.entries, ck)
			}
		}
		built[i] = lv
	})
	c.ledger = NewLedger()
	for _, lv := range built {
		c.ledger.levels[lv.item.Key()] = lv
	}
}

// CellKey returns the canonical identity string of per-dimension values —
// the key SortedCells and the cuboid cell maps are ordered by.
func CellKey(values []hierarchy.NodeID) string { return cellKey(values) }

// TIDs returns the record ids (indices into the build database) assigned to
// the cell, in ascending order. The slice is the cell's own backing store —
// callers must treat it as read-only. It is nil for cubes loaded from a
// snapshot; RebuildTIDs recovers it.
func (cell *Cell) TIDs() []int32 { return cell.tids }

// SetTIDs replaces the cell's record-id list.
func (cell *Cell) SetTIDs(tids []int32) { cell.tids = tids }

// RebuildTIDs re-derives every materialized cell's record-id list from the
// database the cube was built over (or an equal copy), using the same
// packed-key assignment scan as Build. Cubes loaded from snapshots do not
// carry tids; delta maintenance needs them once.
func (c *Cube) RebuildTIDs(db *pathdb.DB) {
	c.assignCells(db, c.populateTargets())
}

// AdmitCell registers a newly-frequent cell (found by delta maintenance) in
// every materialized cuboid sharing its item level, exactly as the build
// phase does for cells found by mining. Existing cells are left untouched.
func (c *Cube) AdmitCell(il ItemLevel, values []hierarchy.NodeID, count int64) {
	c.addCell(il, values, count)
}

// BatchAssignment pairs one materialized cell with the ids of the records
// in an appended range that belong to it.
type BatchAssignment struct {
	Cuboid *Cuboid
	Cell   *Cell
	TIDs   []int32
}

// AssignRange routes the records in [lo, hi) of db to the cells of every
// materialized cuboid using the packed-key assignment plan (the same plan
// the populate scan uses), without mutating the cube. It returns only the
// cells that were hit, in deterministic sorted cuboid/cell order — the
// touched-cell set of an append batch.
func (c *Cube) AssignRange(db *pathdb.DB, lo, hi int) []BatchAssignment {
	targets := c.populateTargets()
	if len(targets) == 0 || lo >= hi {
		return nil
	}
	plan := newAssignPlan(db.Schema, targets)
	bucket := make([][]int32, len(plan.slots))
	plan.assign(db, lo, hi, bucket)
	// Slot ids were handed out in target order, cells in sorted order
	// within each target (see newAssignPlan), so a single walk in the same
	// order recovers the cuboid of every slot.
	var out []BatchAssignment
	slot := 0
	for _, cb := range targets {
		for _, cell := range cb.SortedCells() {
			if tids := bucket[slot]; len(tids) > 0 {
				out = append(out, BatchAssignment{Cuboid: cb, Cell: cell, TIDs: tids})
			}
			slot++
		}
	}
	return out
}

// StagePins converts an all-stage itemset into exception-condition pins,
// applying the build phase's filters: every stage must sit at the same path
// abstraction level and at least one pin must carry a concrete duration.
// It returns the shared path level and ok=false when a filter rejects the
// set.
func StagePins(syms *transact.Symbols, stages []transact.Item) (int, []flowgraph.StagePin, bool) {
	return stagePins(syms, stages)
}

// Clone returns a deep copy of the cube that shares only immutable state
// (the schema and hierarchies, the mining result): cells, flowgraphs, tids,
// the symbol table, and the sub-δ ledger are all copied. The clone is safe
// to mutate — in particular to delta-patch — while readers keep using the
// original. Cloning a lazily loaded cube materializes it (every section
// decoded fresh, bypassing the shared LRU); if the snapshot turns out to be
// corrupt mid-decode the clone comes back empty with the error recorded for
// LazyErr — callers that need the failure as an error use Materialize.
func (c *Cube) Clone() *Cube {
	if c.lazy != nil {
		full, err := c.lazy.materialize(c)
		if err != nil {
			c.lazy.noteErr(err)
			return &Cube{
				Schema:   c.Schema,
				Config:   c.Config,
				Symbols:  c.Symbols.Clone(),
				Mining:   c.Mining,
				Cuboids:  make(map[string]*Cuboid),
				minCount: c.minCount,
				appended: c.appended,
				ledger:   c.ledger.clone(),
			}
		}
		return full
	}
	clone := &Cube{
		Schema:    c.Schema,
		Config:    c.Config,
		Symbols:   c.Symbols.Clone(),
		Mining:    c.Mining,
		Cuboids:   make(map[string]*Cuboid, len(c.Cuboids)),
		minCount:  c.minCount,
		appended:  c.appended,
		ledger:    c.ledger.clone(),
		condCache: c.cloneCondCache(),
	}
	for key, cb := range c.Cuboids {
		ncb := &Cuboid{Spec: cb.Spec, Cells: make(map[string]*Cell, len(cb.Cells))}
		for ck, cell := range cb.Cells {
			ncell := &Cell{
				Values:     append([]hierarchy.NodeID(nil), cell.Values...),
				Count:      cell.Count,
				Redundant:  cell.Redundant,
				Similarity: cell.Similarity,
			}
			if cell.Graph != nil {
				ncell.Graph = cell.Graph.Clone()
			}
			if cell.tids != nil {
				ncell.tids = append([]int32(nil), cell.tids...)
			}
			ncb.Cells[ck] = ncell
		}
		clone.Cuboids[key] = ncb
	}
	return clone
}
