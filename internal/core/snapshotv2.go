package core

// Snapshot format v2: a columnar binary cube encoding replacing the v1
// recursive-DTO gob stream (see DESIGN.md §8). The file is
//
//	magic "FCUBEv2\n" (8 bytes)
//	sections: kind (1 byte) · payload length (uvarint) · payload ·
//	          CRC-32C of the payload (4 bytes little-endian)
//	  header      format version, thresholds, section census
//	  hierarchies location hierarchy plus every item dimension
//	  plan        materialized dimension levels and path levels
//	  cuboid ×N   one section per cuboid, cells with flat flowgraphs
//	  end         empty terminator section
//
// Cuboid sections are independent byte ranges, so Save encodes them on
// Workers goroutines and Load decodes them the same way; both merge results
// in the deterministic sorted-cuboid-key order the sections are written in,
// so the output bytes (and the loaded cube) are identical at any worker
// count. Load sniffs the magic and falls back to the v1 gob decoder, which
// keeps every previously materialized snapshot loadable.
//
// The decoder is hardened against corrupt or adversarial input: section
// payloads are read in bounded chunks (a lying length fails at read time
// instead of pre-allocating the claim), every element count inside a
// section is bounded by the bytes remaining before its column is allocated,
// and all failures surface as *CorruptSnapshotError.

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// magicV2 opens every v2 snapshot. The first byte differs from every gob
// stream a v1 snapshot can start with, so sniffing is unambiguous.
const magicV2 = "FCUBEv2\n"

// formatVersionV2 is written in the header section; the decoder rejects
// anything newer than it understands.
const formatVersionV2 = 2

// Section kinds. secLedger is optional: it is written only for cubes built
// with Config.DeltaLedger (its presence restores that flag on load), so
// snapshots of ledger-less cubes are byte-identical to what older writers
// produced — the golden v1→v2 compatibility fixture depends on that.
const (
	secEnd         = 0
	secHeader      = 1
	secHierarchies = 2
	secPlan        = 3
	secCuboid      = 4
	secLedger      = 5
)

// maxSectionBytes caps one section's claimed payload length (1 GiB). Real
// sections are vastly smaller; anything larger is rejected as corrupt
// before any allocation happens.
const maxSectionBytes = 1 << 30

var snapshotCRCTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptSnapshotError reports structurally invalid snapshot input: a bad
// magic or CRC, a truncated section, or a section whose claimed element
// counts cannot fit the bytes that carry them. It deliberately covers both
// accidental corruption and adversarial input — Load allocates nothing an
// attacker-controlled length field can inflate.
type CorruptSnapshotError struct {
	// Section names the section being decoded ("header", "plan",
	// "cuboid 3,2@0", ...) or "frame" for the outer section framing.
	Section string
	// Detail describes the violated invariant.
	Detail string
}

func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("core: corrupt snapshot: %s: %s", e.Section, e.Detail)
}

// byteReader decodes one section payload with bounds checks. Element counts
// read through count are limited by the bytes remaining at that point:
// every element of every column costs at least one encoded byte, so an
// honest count can never exceed rem(), and a dishonest one is rejected
// before its column is allocated.
type byteReader struct {
	section string
	buf     []byte
	off     int
}

func (r *byteReader) corrupt(format string, args ...any) error {
	return &CorruptSnapshotError{Section: r.section, Detail: fmt.Sprintf(format, args...)}
}

func (r *byteReader) rem() int { return len(r.buf) - r.off }

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.corrupt("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.corrupt("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads an element count and bounds it by the remaining payload.
func (r *byteReader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.rem()) {
		return 0, r.corrupt("%s count %d exceeds %d remaining bytes", what, v, r.rem())
	}
	return int(v), nil
}

// intVal reads a non-negative scalar that is NOT an element count — level
// numbers, indices — so the remaining-bytes bound of count does not apply;
// only int32 overflow is rejected. Callers validate range themselves.
func (r *byteReader) intVal(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, r.corrupt("%s %d overflows int32", what, v)
	}
	return int(v), nil
}

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, r.corrupt("truncated at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// skipVarints advances past k varint-coded values without decoding them.
// Signed (zigzag) and unsigned varints share the continuation-bit framing,
// so skipping needs no knowledge of which one was written.
func (r *byteReader) skipVarints(k int, what string) error {
	for i := 0; i < k; i++ {
		for {
			if r.off >= len(r.buf) {
				return r.corrupt("truncated %s at offset %d", what, r.off)
			}
			b := r.buf[r.off]
			r.off++
			if b < 0x80 {
				break
			}
		}
	}
	return nil
}

// skipBytes advances past k raw bytes (fixed-width floats, flag bytes).
func (r *byteReader) skipBytes(k int, what string) error {
	if r.rem() < k {
		return r.corrupt("truncated %s at offset %d", what, r.off)
	}
	r.off += k
	return nil
}

func (r *byteReader) float64() (float64, error) {
	if r.rem() < 8 {
		return 0, r.corrupt("truncated float at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

// int32 reads a non-negative 32-bit value (node and location ids).
func (r *byteReader) int32() (int32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, r.corrupt("id %d overflows int32", v)
	}
	return int32(v), nil
}

// int32Column reads n ids.
func (r *byteReader) int32Column(n int) ([]int32, error) {
	out := make([]int32, n)
	for i := range out {
		var err error
		if out[i], err = r.int32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// varintColumn reads n signed values.
func (r *byteReader) varintColumn(n int) ([]int64, error) {
	out := make([]int64, n)
	for i := range out {
		var err error
		if out[i], err = r.varint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// uvarintColumn reads n non-negative values.
func (r *byteReader) uvarintColumn(n int, what string) ([]int64, error) {
	out := make([]int64, n)
	for i := range out {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt64 {
			return nil, r.corrupt("%s %d overflows int64", what, v)
		}
		out[i] = int64(v)
	}
	return out, nil
}

// deltaPool reads a delta-coded outcome pool of the given total length,
// restarting at each distribution boundary (see appendDeltaPool). Strict
// monotonicity within each distribution is enforced here, so the
// Multinomial rebuild cannot see duplicate outcomes.
func (r *byteReader) deltaPool(total int, bounds []int32) ([]int64, error) {
	pool := make([]int64, total)
	for b := 0; b+1 < len(bounds); b++ {
		lo, hi := bounds[b], bounds[b+1]
		if lo == hi {
			continue
		}
		first, err := r.varint()
		if err != nil {
			return nil, err
		}
		pool[lo] = first
		prev := first
		for k := lo + 1; k < hi; k++ {
			gap, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			v := prev + int64(gap)
			if v <= prev {
				return nil, r.corrupt("outcome pool not strictly increasing at index %d", k)
			}
			pool[k] = v
			prev = v
		}
	}
	return pool, nil
}

// string reads a length-prefixed UTF-8 string.
func (r *byteReader) string(what string) (string, error) {
	n, err := r.count(what + " length")
	if err != nil {
		return "", err
	}
	if r.rem() < n {
		return "", r.corrupt("truncated %s at offset %d", what, r.off)
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// SaveOptions parameterizes SaveWith.
type SaveOptions struct {
	// Workers encodes cuboid sections concurrently; 0 or 1 is sequential.
	// The output bytes are identical at any worker count.
	Workers int
}

// Save serializes the materialized cube in snapshot format v2, encoding
// cuboid sections on Config.Workers goroutines. The path database itself is
// not saved — a loaded cube answers queries from its flowgraphs but cannot
// re-mine exceptions. Output is byte-deterministic: cuboids and cells are
// written in sorted key order and section encoding is worker-count
// independent.
func (c *Cube) Save(w io.Writer) error {
	return c.SaveWith(w, SaveOptions{Workers: c.Config.Workers})
}

// SaveWith is Save with explicit codec options. A lazily loaded cube saves
// through its backend: cuboid sections stored with sorted cells — every
// file this package writes — are raw byte copies straight from the mapping,
// so the output is identical to an eager load-then-save without decoding a
// single cell.
func (c *Cube) SaveWith(w io.Writer, opts SaveOptions) error {
	if c.lazy != nil {
		return c.lazy.save(c, w)
	}
	cuboids := c.sortedCuboids()
	header, hiers, plan := encodeMetaSectionsV2(c, len(cuboids))
	sections := encodeCuboidsV2(cuboids, opts.Workers)

	if _, err := io.WriteString(w, magicV2); err != nil {
		return err
	}
	if err := writeSection(w, secHeader, header); err != nil {
		return err
	}
	if err := writeSection(w, secHierarchies, hiers); err != nil {
		return err
	}
	if err := writeSection(w, secPlan, plan); err != nil {
		return err
	}
	for _, payload := range sections {
		if err := writeSection(w, secCuboid, payload); err != nil {
			return err
		}
	}
	if c.ledger != nil {
		if err := writeSection(w, secLedger, encodeLedgerV2(c.ledger)); err != nil {
			return err
		}
	}
	return writeSection(w, secEnd, nil)
}

// encodeLedgerV2 encodes the sub-δ ledger: levels in ascending item-level
// key order, entries in ascending cell-key order — deterministic bytes for
// a given ledger state.
func encodeLedgerV2(l *Ledger) []byte {
	levels := l.sortedLevels()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(levels)))
	for _, lv := range levels {
		buf = binary.AppendUvarint(buf, uint64(len(lv.item)))
		for _, level := range lv.item {
			buf = binary.AppendUvarint(buf, uint64(level))
		}
		entries := lv.sortedEntries()
		buf = binary.AppendUvarint(buf, uint64(len(entries)))
		for _, e := range entries {
			for _, v := range e.values {
				buf = binary.AppendVarint(buf, int64(v))
			}
			buf = binary.AppendVarint(buf, e.count)
		}
	}
	return buf
}

// decodeLedgerV2 decodes a secLedger payload. numDims bounds every item
// level's width.
func decodeLedgerV2(payload []byte, numDims int) (*Ledger, error) {
	r := &byteReader{buf: payload, section: "ledger"}
	nl, err := r.count("ledger level")
	if err != nil {
		return nil, err
	}
	ledger := NewLedger()
	for i := 0; i < nl; i++ {
		nd, err := r.count("ledger item level width")
		if err != nil {
			return nil, err
		}
		if nd != numDims {
			return nil, r.corrupt("ledger item level has %d dimensions, header %d", nd, numDims)
		}
		il := make(ItemLevel, nd)
		for d := range il {
			l, err := r.intVal("ledger level value")
			if err != nil {
				return nil, err
			}
			il[d] = l
		}
		key := il.Key()
		if _, dup := ledger.levels[key]; dup {
			return nil, r.corrupt("duplicate ledger item level %s", key)
		}
		ne, err := r.count("ledger entry")
		if err != nil {
			return nil, err
		}
		lv := &ledgerLevel{item: il, entries: make(map[string]*ledgerEntry, ne)}
		ledger.levels[key] = lv
		for j := 0; j < ne; j++ {
			values := make([]hierarchy.NodeID, nd)
			for d := range values {
				v, err := r.varint()
				if err != nil {
					return nil, err
				}
				if v < math.MinInt32 || v > math.MaxInt32 {
					return nil, r.corrupt("ledger value %d outside int32", v)
				}
				values[d] = hierarchy.NodeID(v)
			}
			count, err := r.varint()
			if err != nil {
				return nil, err
			}
			if count <= 0 {
				return nil, r.corrupt("ledger entry count %d, want positive", count)
			}
			ck := cellKey(values)
			if _, dup := lv.entries[ck]; dup {
				return nil, r.corrupt("duplicate ledger entry %s at level %s", ck, key)
			}
			lv.entries[ck] = &ledgerEntry{values: values, count: count}
		}
	}
	if r.rem() != 0 {
		return nil, r.corrupt("%d trailing bytes", r.rem())
	}
	return ledger, nil
}

// encodeCuboidsV2 encodes every cuboid section, spreading the work over
// workers goroutines. Results come back indexed by cuboid position, so the
// caller writes them in the same deterministic order at any worker count.
func encodeCuboidsV2(cuboids []*Cuboid, workers int) [][]byte {
	payloads := make([][]byte, len(cuboids))
	if workers > len(cuboids) {
		workers = len(cuboids)
	}
	if workers <= 1 {
		for i, cb := range cuboids {
			payloads[i] = encodeCuboidV2(cb)
		}
		return payloads
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				payloads[i] = encodeCuboidV2(cuboids[i])
			}
		}()
	}
	for i := range cuboids {
		work <- i
	}
	close(work)
	wg.Wait()
	return payloads
}

// encodeCuboidV2 encodes one cuboid section payload: the spec, then every
// cell in sorted key order with its flat flowgraph.
func encodeCuboidV2(cb *Cuboid) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(cb.Spec.Item)))
	for _, l := range cb.Spec.Item {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	buf = binary.AppendUvarint(buf, uint64(cb.Spec.PathLevel))
	cells := cb.SortedCells()
	buf = binary.AppendUvarint(buf, uint64(len(cells)))
	for _, cell := range cells {
		buf = appendCellV2(buf, cell)
	}
	return buf
}

// appendCellV2 appends one cell's snapshot encoding: values, count, flags,
// similarity, and the flat flowgraph. It is the unit CellDigest hashes, so
// "byte-identical to what eager Build would have materialized" (the OLAP
// computed-cell contract) is stated against exactly the bytes Save writes.
func appendCellV2(buf []byte, cell *Cell) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(cell.Values)))
	for _, v := range cell.Values {
		buf = binary.AppendUvarint(buf, uint64(uint32(v)))
	}
	buf = binary.AppendVarint(buf, cell.Count)
	var flags byte
	if cell.Redundant {
		flags |= 1
	}
	if cell.Graph != nil {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cell.Similarity))
	if cell.Graph != nil {
		buf = appendFlatGraph(buf, flowgraph.Flatten(cell.Graph))
	}
	return buf
}

// appendHierarchyV2 encodes one hierarchy: dimension name, then nodes 1..n
// (the root is implicit) as names followed by parent ids.
func appendHierarchyV2(buf []byte, h *hierarchy.Hierarchy) []byte {
	buf = appendString(buf, h.Dimension())
	n := h.Len() - 1
	buf = binary.AppendUvarint(buf, uint64(n))
	for id := hierarchy.NodeID(1); int(id) <= n; id++ {
		buf = appendString(buf, h.Name(id))
	}
	for id := hierarchy.NodeID(1); int(id) <= n; id++ {
		buf = binary.AppendUvarint(buf, uint64(uint32(h.Parent(id))))
	}
	return buf
}

// writeSection frames one section: kind, payload length, payload, CRC-32C.
func writeSection(w io.Writer, kind byte, payload []byte) error {
	hdr := make([]byte, 0, 1+binary.MaxVarintLen64)
	hdr = append(hdr, kind)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, snapshotCRCTable))
	_, err := w.Write(crc[:])
	return err
}

// LoadOptions parameterizes LoadWith.
type LoadOptions struct {
	// Workers decodes cuboid sections concurrently; 0 means GOMAXPROCS,
	// 1 is sequential. The loaded cube is identical at any worker count.
	Workers int
}

// Load reconstructs a cube saved with Save. The result supports Cell,
// QueryGraph, MarkRedundancy and Compress; Mining statistics and the
// ability to re-mine exceptions are gone with the path database. Both
// snapshot formats load: the leading magic selects the v2 columnar decoder
// or the legacy v1 gob decoder.
func Load(r io.Reader) (*Cube, error) {
	return LoadContext(context.Background(), r)
}

// LoadWith is Load with explicit codec options.
func LoadWith(r io.Reader, opts LoadOptions) (*Cube, error) {
	return LoadContextWith(context.Background(), r, opts)
}

// LoadContextWith is LoadContext with explicit codec options: ctx is
// checked between snapshot sections.
func LoadContextWith(ctx context.Context, r io.Reader, opts LoadOptions) (*Cube, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(magicV2))
	if err == nil && string(magic) == magicV2 {
		return loadV2(ctx, br, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Not a v2 snapshot (or shorter than the magic): the v1 gob decoder
	// owns the error message either way.
	return loadV1(br)
}

// sectionPayload reads one framed section, bounding the claimed length and
// verifying the CRC. Payload bytes are read in chunks so a lying length
// fails with a truncation error instead of one huge allocation.
func sectionPayload(br *bufio.Reader) (kind byte, payload []byte, err error) {
	frame := &byteReader{section: "frame"}
	kind, err = br.ReadByte()
	if err != nil {
		return 0, nil, frame.corrupt("missing section kind: %v", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, frame.corrupt("bad section length: %v", err)
	}
	if n > maxSectionBytes {
		return 0, nil, frame.corrupt("section length %d exceeds the %d byte cap", n, maxSectionBytes)
	}
	const chunk = 1 << 20
	payload = make([]byte, 0, min(int(n), chunk))
	for len(payload) < int(n) {
		step := min(int(n)-len(payload), chunk)
		start := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(br, payload[start:]); err != nil {
			return 0, nil, frame.corrupt("truncated section payload: %v", err)
		}
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return 0, nil, frame.corrupt("missing section checksum: %v", err)
	}
	if got, want := crc32.Checksum(payload, snapshotCRCTable), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, nil, frame.corrupt("section checksum mismatch (got %08x, want %08x)", got, want)
	}
	return kind, payload, nil
}

// preambleV2 is the decoded metadata prefix of a v2 snapshot — everything
// before the cuboid sections: thresholds and the section census from the
// header, the schema hierarchies, and the encoding plan. It is all a
// stateless query router needs (see LoadMeta and internal/cluster), and
// loadV2 decodes the cell-bearing sections on top of it.
type preambleV2 struct {
	minCount   int64
	epsilon    float64
	tau        float64
	numDims    int
	numCuboids uint64
	location   *hierarchy.Hierarchy
	schema     *pathdb.Schema
	levels     []pathdb.PathLevel
	plan       transact.Plan
	syms       *transact.Symbols
}

// cube assembles a cube skeleton from the preamble: schema, symbols and
// thresholds set, no cuboids yet.
func (p *preambleV2) cube() *Cube {
	return &Cube{
		Schema:   p.schema,
		Config:   Config{MinCount: p.minCount, Epsilon: p.epsilon, Tau: p.tau, Plan: p.plan},
		Symbols:  p.syms,
		Cuboids:  make(map[string]*Cuboid),
		minCount: p.minCount,
	}
}

// headerV2 is the decoded header section: thresholds plus the census of the
// other sections. The counts are a census of *other* sections, so the
// byteReader's remaining-bytes bound does not apply to them; each is
// re-bounded against the section that actually carries the elements before
// anything is allocated from it.
type headerV2 struct {
	minCount      int64
	epsilon       float64
	tau           float64
	numDims       uint64
	numPathLevels uint64
	numCuboids    uint64
}

// decodeHeaderV2 decodes a secHeader payload. Both the streaming loader and
// the mmap-backed lazy open (lazyload.go) parse through here, so the header
// format exists in exactly one reader.
func decodeHeaderV2(payload []byte) (headerV2, error) {
	hr := &byteReader{section: "header", buf: payload}
	var h headerV2
	version, err := hr.uvarint()
	if err != nil {
		return h, err
	}
	if version != formatVersionV2 {
		return h, hr.corrupt("format version %d not supported (have %d)", version, formatVersionV2)
	}
	if h.minCount, err = hr.varint(); err != nil {
		return h, err
	}
	if h.epsilon, err = hr.float64(); err != nil {
		return h, err
	}
	if h.tau, err = hr.float64(); err != nil {
		return h, err
	}
	if h.numDims, err = hr.uvarint(); err != nil {
		return h, err
	}
	if h.numPathLevels, err = hr.uvarint(); err != nil {
		return h, err
	}
	if h.numCuboids, err = hr.uvarint(); err != nil {
		return h, err
	}
	return h, nil
}

// decodeHierarchiesV2 decodes a secHierarchies payload into the schema:
// the location hierarchy followed by numDims item dimensions.
func decodeHierarchiesV2(payload []byte, numDims uint64) (*pathdb.Schema, error) {
	gr := &byteReader{section: "hierarchies", buf: payload}
	// Every hierarchy costs at least one byte in this section, so the
	// header's dimension census cannot honestly exceed its payload.
	if numDims > uint64(len(payload)) {
		return nil, gr.corrupt("dimension count %d exceeds the %d-byte hierarchies section", numDims, len(payload))
	}
	location, err := decodeHierarchyV2(gr)
	if err != nil {
		return nil, err
	}
	dims := make([]*hierarchy.Hierarchy, int(numDims))
	for i := range dims {
		if dims[i], err = decodeHierarchyV2(gr); err != nil {
			return nil, err
		}
	}
	return pathdb.NewSchema(location, dims...)
}

// decodePlanV2 decodes a secPlan payload against an already-decoded schema,
// cross-checking the header census.
func decodePlanV2(payload []byte, schema *pathdb.Schema, h headerV2) (transact.Plan, []pathdb.PathLevel, error) {
	pr := &byteReader{section: "plan", buf: payload}
	nd, err := pr.count("plan dimension")
	if err != nil {
		return transact.Plan{}, nil, err
	}
	if uint64(nd) != h.numDims {
		return transact.Plan{}, nil, pr.corrupt("plan lists %d dimensions, header %d", nd, h.numDims)
	}
	dimLevels := make([][]int, nd)
	for d := range dimLevels {
		nl, err := pr.count("dimension level")
		if err != nil {
			return transact.Plan{}, nil, err
		}
		dimLevels[d] = make([]int, nl)
		for i := range dimLevels[d] {
			l, err := pr.intVal("level")
			if err != nil {
				return transact.Plan{}, nil, err
			}
			dimLevels[d][i] = l
		}
	}
	npl, err := pr.count("plan path level")
	if err != nil {
		return transact.Plan{}, nil, err
	}
	if uint64(npl) != h.numPathLevels {
		return transact.Plan{}, nil, pr.corrupt("plan lists %d path levels, header %d", npl, h.numPathLevels)
	}
	levels := make([]pathdb.PathLevel, npl)
	for i := range levels {
		nn, err := pr.count("cut node")
		if err != nil {
			return transact.Plan{}, nil, err
		}
		nodes := make([]hierarchy.NodeID, nn)
		for j := range nodes {
			id, err := pr.int32()
			if err != nil {
				return transact.Plan{}, nil, err
			}
			nodes[j] = hierarchy.NodeID(id)
		}
		cut, err := hierarchy.NewCut(schema.Location, nodes)
		if err != nil {
			return transact.Plan{}, nil, err
		}
		anyB, err := pr.byte()
		if err != nil {
			return transact.Plan{}, nil, err
		}
		grain, err := pr.varint()
		if err != nil {
			return transact.Plan{}, nil, err
		}
		levels[i] = pathdb.PathLevel{Cut: cut, Time: pathdb.TimeLevel{Grain: grain, Any: anyB != 0}}
	}
	return transact.Plan{DimLevels: dimLevels, PathLevels: levels}, levels, nil
}

// assemblePreambleV2 combines the three decoded metadata sections into a
// preamble, building the symbol table.
func assemblePreambleV2(h headerV2, schema *pathdb.Schema, plan transact.Plan, levels []pathdb.PathLevel) (*preambleV2, error) {
	syms, err := transact.NewSymbols(schema, plan)
	if err != nil {
		return nil, err
	}
	return &preambleV2{
		minCount:   h.minCount,
		epsilon:    h.epsilon,
		tau:        h.tau,
		numDims:    int(h.numDims),
		numCuboids: h.numCuboids,
		location:   schema.Location,
		schema:     schema,
		levels:     levels,
		plan:       plan,
		syms:       syms,
	}, nil
}

// loadPreambleV2 decodes the magic, header, hierarchies and plan sections
// from br; ctx is checked between sections. The per-section payload parsing
// is shared with the lazy open path (lazyload.go) — only the framing walk
// differs.
func loadPreambleV2(ctx context.Context, br *bufio.Reader) (*preambleV2, error) {
	if _, err := br.Discard(len(magicV2)); err != nil {
		return nil, err
	}

	kind, payload, err := sectionPayload(br)
	if err != nil {
		return nil, err
	}
	if kind != secHeader {
		return nil, (&byteReader{section: "header"}).corrupt("first section has kind %d, want header", kind)
	}
	h, err := decodeHeaderV2(payload)
	if err != nil {
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	kind, payload, err = sectionPayload(br)
	if err != nil {
		return nil, err
	}
	if kind != secHierarchies {
		return nil, (&byteReader{section: "hierarchies"}).corrupt("second section has kind %d, want hierarchies", kind)
	}
	schema, err := decodeHierarchiesV2(payload, h.numDims)
	if err != nil {
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	kind, payload, err = sectionPayload(br)
	if err != nil {
		return nil, err
	}
	if kind != secPlan {
		return nil, (&byteReader{section: "plan"}).corrupt("third section has kind %d, want plan", kind)
	}
	plan, levels, err := decodePlanV2(payload, schema, h)
	if err != nil {
		return nil, err
	}
	return assemblePreambleV2(h, schema, plan, levels)
}

// loadV2 decodes a v2 snapshot from br, positioned at the magic; ctx is
// checked after every section read.
func loadV2(ctx context.Context, br *bufio.Reader, opts LoadOptions) (*Cube, error) {
	p, err := loadPreambleV2(ctx, br)
	if err != nil {
		return nil, err
	}

	// Cuboid sections (then an optional ledger section): collect payloads,
	// then decode the cuboids on workers.
	var cuboidPayloads [][]byte
	var ledgerPayload []byte
	haveLedger := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		kind, payload, err := sectionPayload(br)
		if err != nil {
			return nil, err
		}
		if kind == secEnd {
			break
		}
		if kind == secLedger {
			if haveLedger {
				return nil, (&byteReader{section: "frame"}).corrupt("duplicate ledger section")
			}
			haveLedger = true
			ledgerPayload = payload
			continue
		}
		if kind != secCuboid {
			return nil, (&byteReader{section: "frame"}).corrupt("unknown section kind %d", kind)
		}
		if haveLedger {
			return nil, (&byteReader{section: "frame"}).corrupt("cuboid section after the ledger section")
		}
		if uint64(len(cuboidPayloads)) >= p.numCuboids {
			return nil, (&byteReader{section: "frame"}).corrupt(
				"more cuboid sections than the header's %d", p.numCuboids)
		}
		cuboidPayloads = append(cuboidPayloads, payload)
	}
	if uint64(len(cuboidPayloads)) != p.numCuboids {
		return nil, (&byteReader{section: "frame"}).corrupt(
			"%d cuboid sections, header promised %d", len(cuboidPayloads), p.numCuboids)
	}

	cuboids, err := decodeCuboidsV2(cuboidPayloads, p.location, p.levels, opts.Workers)
	if err != nil {
		return nil, err
	}

	cube := p.cube()
	for _, cb := range cuboids {
		if err := validateSpec(cb.Spec, p.syms, p.schema); err != nil {
			return nil, err
		}
		if _, dup := cube.Cuboids[cb.Spec.Key()]; dup {
			return nil, (&byteReader{section: "frame"}).corrupt("duplicate cuboid %s", cb.Spec.Key())
		}
		cube.Cuboids[cb.Spec.Key()] = cb
	}
	if haveLedger {
		ledger, err := decodeLedgerV2(ledgerPayload, p.numDims)
		if err != nil {
			return nil, err
		}
		cube.ledger = ledger
		cube.Config.DeltaLedger = true
	}
	return cube, nil
}

// decodeCuboidsV2 decodes every cuboid section payload, spreading the work
// over workers goroutines (0 = GOMAXPROCS). Results are positional, so the
// assembled cube is identical at any worker count.
func decodeCuboidsV2(payloads [][]byte, loc *hierarchy.Hierarchy, levels []pathdb.PathLevel, workers int) ([]*Cuboid, error) {
	out := make([]*Cuboid, len(payloads))
	errs := make([]error, len(payloads))
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(payloads) {
		workers = len(payloads)
	}
	if workers <= 1 {
		for i, p := range payloads {
			out[i], _, errs[i] = decodeCuboidV2(p, loc, levels)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					out[i], _, errs[i] = decodeCuboidV2(payloads[i], loc, levels)
				}
			}()
		}
		for i := range payloads {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeCuboidHeaderV2 decodes the fixed prefix of a cuboid section — the
// spec and the cell count — leaving r positioned at the first cell. The lazy
// open path reads just this much per section to build its key-routed index
// without decoding any cells.
func decodeCuboidHeaderV2(r *byteReader, levels []pathdb.PathLevel) (CuboidSpec, int, error) {
	ni, err := r.count("item level")
	if err != nil {
		return CuboidSpec{}, 0, err
	}
	item := make(ItemLevel, ni)
	for i := range item {
		l, err := r.intVal("item level value")
		if err != nil {
			return CuboidSpec{}, 0, err
		}
		item[i] = l
	}
	pl, err := r.intVal("path level")
	if err != nil {
		return CuboidSpec{}, 0, err
	}
	if pl >= len(levels) {
		return CuboidSpec{}, 0, r.corrupt("path level %d out of range (%d levels)", pl, len(levels))
	}
	spec := CuboidSpec{Item: item, PathLevel: pl}
	r.section = "cuboid " + spec.Key()
	numCells, err := r.count("cell")
	if err != nil {
		return CuboidSpec{}, 0, err
	}
	return spec, numCells, nil
}

// decodeCellPrefixV2 decodes the fixed prefix of one cell — values, count,
// flags, similarity — leaving r positioned at the flat graph when flags&2 is
// set. Shared between the full decoder and the lazy flat scans.
func decodeCellPrefixV2(r *byteReader) (values []hierarchy.NodeID, count int64, flags byte, similarity float64, err error) {
	nv, err := r.count("cell value")
	if err != nil {
		return nil, 0, 0, 0, err
	}
	values = make([]hierarchy.NodeID, nv)
	for i := range values {
		id, err := r.int32()
		if err != nil {
			return nil, 0, 0, 0, err
		}
		values[i] = hierarchy.NodeID(id)
	}
	if count, err = r.varint(); err != nil {
		return nil, 0, 0, 0, err
	}
	if flags, err = r.byte(); err != nil {
		return nil, 0, 0, 0, err
	}
	if similarity, err = r.float64(); err != nil {
		return nil, 0, 0, 0, err
	}
	return values, count, flags, similarity, nil
}

// decodeCuboidV2 decodes one cuboid section payload. The second result is an
// estimate of the decoded cuboid's resident heap footprint in bytes (cells,
// nodes, children maps, multinomial maps), which the lazy loader's LRU uses
// as the eviction cost so its byte budget tracks decoded size rather than
// the much smaller encoded payload.
func decodeCuboidV2(payload []byte, loc *hierarchy.Hierarchy, levels []pathdb.PathLevel) (*Cuboid, int64, error) {
	r := &byteReader{section: "cuboid", buf: payload}
	spec, numCells, err := decodeCuboidHeaderV2(r, levels)
	if err != nil {
		return nil, 0, err
	}
	cb := &Cuboid{Spec: spec, Cells: make(map[string]*Cell, numCells)}
	var footprint int64
	for ci := 0; ci < numCells; ci++ {
		values, count, flags, similarity, err := decodeCellPrefixV2(r)
		if err != nil {
			return nil, 0, err
		}
		cell := &Cell{
			Values:     values,
			Count:      count,
			Redundant:  flags&1 != 0,
			Similarity: similarity,
		}
		footprint += cellBaseFootprint + int64(len(values))*8
		if flags&2 != 0 {
			flat, err := decodeFlatGraph(r)
			if err != nil {
				return nil, 0, err
			}
			footprint += flatFootprint(flat)
			g, err := flowgraph.Unflatten(loc, levels[spec.PathLevel], flat)
			if err != nil {
				return nil, 0, r.corrupt("cell %d: %v", ci, err)
			}
			cell.Graph = g
		}
		key := cellKey(values)
		if _, dup := cb.Cells[key]; dup {
			return nil, 0, r.corrupt("duplicate cell %s", key)
		}
		cb.Cells[key] = cell
	}
	if r.rem() != 0 {
		return nil, 0, r.corrupt("%d trailing bytes", r.rem())
	}
	return cb, footprint, nil
}

// Decoded-footprint model constants: rough per-object heap costs of the
// pointer-form structures Unflatten builds (struct size plus map-bucket
// share). They only steer LRU eviction, so being within ~2x of the
// allocator's truth is enough.
const (
	cellBaseFootprint = 160 // Cell + cuboid map entry + key string
	nodeFootprint     = 176 // Node + children map entry share
	distFootprint     = 64  // Multinomial struct + empty map header
	outcomeFootprint  = 52  // one map[int64]int64 entry share
	pinFootprint      = 40  // StagePin
	excFootprint      = 128 // Exception struct
)

// flatFootprint estimates the decoded (pointer-form) heap footprint of one
// flat graph.
func flatFootprint(f *flowgraph.Flat) int64 {
	n := int64(f.NumNodes())
	m := int64(len(f.ExcNode))
	return n*nodeFootprint +
		2*(n+m)*distFootprint +
		int64(len(f.Outcomes)+len(f.ExcOutcomes))*outcomeFootprint +
		int64(len(f.PinDepth))*pinFootprint +
		m*excFootprint
}

// decodeHierarchyV2 reads one hierarchy written by appendHierarchyV2.
func decodeHierarchyV2(r *byteReader) (*hierarchy.Hierarchy, error) {
	dim, err := r.string("dimension name")
	if err != nil {
		return nil, err
	}
	n, err := r.count("hierarchy node")
	if err != nil {
		return nil, err
	}
	names := make([]string, n)
	for i := range names {
		if names[i], err = r.string("concept name"); err != nil {
			return nil, err
		}
	}
	h := hierarchy.New(dim)
	for _, name := range names {
		p, err := r.int32()
		if err != nil {
			return nil, err
		}
		if int(p) >= h.Len() {
			return nil, r.corrupt("hierarchy %q: node %q references later parent %d", dim, name, p)
		}
		if _, err := h.Add(h.Name(hierarchy.NodeID(p)), name); err != nil {
			return nil, r.corrupt("hierarchy %q: %v", dim, err)
		}
	}
	return h, nil
}
