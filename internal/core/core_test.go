package core_test

import (
	"math"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

func examplePlan(ex *paperex.Example) transact.Plan {
	leaf := hierarchy.LevelCut(ex.Location, ex.Location.Depth())
	up := hierarchy.LevelCut(ex.Location, 1)
	return transact.Plan{
		PathLevels: []pathdb.PathLevel{
			{Cut: leaf, Time: pathdb.TimeBase},
			{Cut: leaf, Time: pathdb.TimeAny},
			{Cut: up, Time: pathdb.TimeBase},
			{Cut: up, Time: pathdb.TimeAny},
		},
	}
}

func buildExample(t testing.TB, cfg core.Config) (*paperex.Example, *core.Cube) {
	t.Helper()
	ex := paperex.New()
	if cfg.Plan.PathLevels == nil {
		cfg.Plan = examplePlan(ex)
	}
	cube, err := core.Build(ex.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ex, cube
}

func TestBuildIcebergCells(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})

	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	want := []struct {
		product, brand string
		count          int64
	}{
		{"shoes", "nike", 3},
		{"shoes", "adidas", 2},
		{"outerwear", "nike", 3},
	}
	for _, w := range want {
		cell, ok := cube.Cell(spec, []hierarchy.NodeID{
			ex.Product.MustLookup(w.product), ex.Brand.MustLookup(w.brand),
		})
		if !ok {
			t.Errorf("cell (%s,%s) missing", w.product, w.brand)
			continue
		}
		if cell.Count != w.count {
			t.Errorf("cell (%s,%s) count = %d, want %d", w.product, w.brand, cell.Count, w.count)
		}
		if cell.Graph == nil || cell.Graph.Paths() != w.count {
			t.Errorf("cell (%s,%s) graph missing or wrong path count", w.product, w.brand)
		}
	}

	// Iceberg: (shirt,*) holds one path and must not be materialized
	// (paper Definition 4.5's example).
	shirtSpec := core.CuboidSpec{Item: core.ItemLevel{3, 0}, PathLevel: 0}
	if _, ok := cube.Cell(shirtSpec, []hierarchy.NodeID{ex.Product.MustLookup("shirt"), hierarchy.Root}); ok {
		t.Errorf("(shirt,*) materialized despite iceberg δ=2")
	}
}

func TestFigure4ThroughCube(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})
	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	cell, ok := cube.Cell(spec, []hierarchy.NodeID{
		ex.Product.MustLookup("outerwear"), ex.Brand.MustLookup("nike"),
	})
	if !ok {
		t.Fatal("(outerwear,nike) missing")
	}
	g := cell.Graph
	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	f := g.NodeAt([]hierarchy.NodeID{loc("f")})
	if f == nil || math.Abs(f.Transitions.Prob(int64(loc("t")))-1) > 1e-9 {
		t.Errorf("factory→truck probability wrong in (outerwear,nike) graph")
	}
	ft := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t")})
	if ft == nil || math.Abs(ft.Transitions.Prob(int64(loc("w")))-1.0/3) > 1e-9 {
		t.Errorf("truck→warehouse probability wrong in (outerwear,nike) graph")
	}
}

func TestApexCellAndPathLevels(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})
	for pl := 0; pl < 4; pl++ {
		spec := core.CuboidSpec{Item: core.ItemLevel{0, 0}, PathLevel: pl}
		cell, ok := cube.Cell(spec, []hierarchy.NodeID{hierarchy.Root, hierarchy.Root})
		if !ok {
			t.Fatalf("apex cell missing at path level %d", pl)
		}
		if cell.Count != 8 || cell.Graph.Paths() != 8 {
			t.Errorf("apex at level %d: count %d graph %d, want 8", pl, cell.Count, cell.Graph.Paths())
		}
	}
	// At the aggregated location cut, the apex graph must start with the
	// factory top-level concept.
	spec := core.CuboidSpec{Item: core.ItemLevel{0, 0}, PathLevel: 2}
	cell, _ := cube.Cell(spec, []hierarchy.NodeID{hierarchy.Root, hierarchy.Root})
	fa := ex.Location.MustLookup("factory")
	if cell.Graph.NodeAt([]hierarchy.NodeID{fa}) == nil {
		t.Errorf("aggregated apex graph lacks factory top-level node")
	}
}

func TestExceptionsMinedFromSegments(t *testing.T) {
	_, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	total := 0
	for _, cb := range cube.Cuboids {
		for _, cell := range cb.Cells {
			total += len(cell.Graph.Exceptions())
		}
	}
	if total == 0 {
		t.Fatalf("no exceptions mined across the cube")
	}
}

func TestQueryGraphFallback(t *testing.T) {
	ex, cube := buildExample(t, core.Config{MinCount: 2})
	// (sandals, nike) holds one path: below the iceberg threshold, so the
	// query must roll up — to (shoes, nike) or beyond.
	spec := core.CuboidSpec{Item: core.ItemLevel{3, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{ex.Product.MustLookup("sandals"), ex.Brand.MustLookup("nike")}
	g, src, exact, ok := cube.QueryGraph(spec, values)
	if !ok {
		t.Fatal("fallback query failed entirely")
	}
	if exact {
		t.Errorf("query reported exact for a non-materialized cell")
	}
	if g == nil || src == nil {
		t.Fatal("fallback returned nil graph or source")
	}
	if src.Count < 2 {
		t.Errorf("fallback source count = %d, want >= δ", src.Count)
	}

	// An exact hit reports exact=true.
	spec2 := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	values2 := []hierarchy.NodeID{ex.Product.MustLookup("shoes"), ex.Brand.MustLookup("nike")}
	if _, _, exact2, ok2 := cube.QueryGraph(spec2, values2); !ok2 || !exact2 {
		t.Errorf("exact query (shoes,nike) failed: ok=%v exact=%v", ok2, exact2)
	}
}

func TestRedundancyMarkAndCompress(t *testing.T) {
	// A dataset where every product behaves identically: all child cells
	// are redundant against their parents at any reasonable τ.
	cfg := datagen.Default()
	cfg.NumPaths = 500
	cfg.NumDims = 1
	cfg.DimFanouts = [3]int{2, 2, 2}
	cfg.NumSequences = 1 // one flow for everyone
	cfg.SeqLenMin, cfg.SeqLenMax = 3, 3
	cfg.DurationDomain = 1
	ds := datagen.MustGenerate(cfg)

	cube, err := core.Build(ds.DB, core.Config{
		MinSupport: 0.05,
		Plan:       ds.DefaultPlan(),
		Tau:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	redundant := 0
	withParents := 0
	for _, cb := range cube.Cuboids {
		nonStar := false
		for _, l := range cb.Spec.Item {
			if l > 0 {
				nonStar = true
			}
		}
		for _, cell := range cb.Cells {
			if nonStar {
				withParents++
				if cell.Redundant {
					redundant++
				}
			} else if cell.Redundant {
				t.Errorf("apex-level cell marked redundant; it has no parents")
			}
		}
	}
	if withParents == 0 {
		t.Fatal("no child cells materialized")
	}
	if redundant != withParents {
		t.Errorf("identical-behaviour dataset: %d/%d child cells redundant, want all", redundant, withParents)
	}

	removed := cube.Compress()
	if removed != redundant {
		t.Errorf("Compress removed %d cells, marked %d", removed, redundant)
	}
	// Queries still answer from the apex after compression.
	spec := core.CuboidSpec{Item: core.ItemLevel{1}, PathLevel: 0}
	someVal := ds.Schema.Dims[0].NodesAtLevel(1)[0]
	g, _, exact, ok := cube.QueryGraph(spec, []hierarchy.NodeID{someVal})
	if !ok || g == nil {
		t.Fatal("query after compression failed")
	}
	if exact {
		t.Errorf("query after compression reported exact for a compressed cell")
	}
}

func TestPartialMaterialization(t *testing.T) {
	ex := paperex.New()
	specs := []core.CuboidSpec{
		{Item: core.ItemLevel{2, 2}, PathLevel: 0},
		{Item: core.ItemLevel{0, 0}, PathLevel: 0},
	}
	cube, err := core.Build(ex.DB, core.Config{
		MinCount: 2,
		Plan:     examplePlan(ex),
		Cuboids:  specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cuboids) != 2 {
		t.Fatalf("materialized %d cuboids, want 2", len(cube.Cuboids))
	}
	if _, ok := cube.Cell(core.CuboidSpec{Item: core.ItemLevel{3, 2}, PathLevel: 0},
		[]hierarchy.NodeID{ex.Product.MustLookup("tennis"), ex.Brand.MustLookup("nike")}); ok {
		t.Errorf("unmaterialized cuboid answered a Cell lookup")
	}
}

func TestBuildValidatesSpecs(t *testing.T) {
	ex := paperex.New()
	bad := []core.Config{
		{MinCount: 2, Plan: examplePlan(ex), Cuboids: []core.CuboidSpec{{Item: core.ItemLevel{1}, PathLevel: 0}}},
		{MinCount: 2, Plan: examplePlan(ex), Cuboids: []core.CuboidSpec{{Item: core.ItemLevel{1, 1}, PathLevel: 9}}},
		{MinCount: 2, Plan: examplePlan(ex), Cuboids: []core.CuboidSpec{{Item: core.ItemLevel{7, 1}, PathLevel: 0}}},
	}
	for i, cfg := range bad {
		if _, err := core.Build(ex.DB, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSpecEnumeration(t *testing.T) {
	_, cube := buildExample(t, core.Config{MinCount: 2})
	// product levels {1,2,3} + '*', brand levels {1,2} + '*', 4 path
	// levels: 4 × 3 × 4 = 48 cuboids.
	if len(cube.Cuboids) != 48 {
		t.Errorf("enumerated %d cuboids, want 48", len(cube.Cuboids))
	}
}

func TestItemLevelDominates(t *testing.T) {
	cases := []struct {
		a, b core.ItemLevel
		want bool
	}{
		{core.ItemLevel{0, 0}, core.ItemLevel{3, 2}, true},
		{core.ItemLevel{1, 2}, core.ItemLevel{3, 2}, true},
		{core.ItemLevel{3, 2}, core.ItemLevel{1, 2}, false},
		{core.ItemLevel{1, 1}, core.ItemLevel{1, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v dominates %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestParallelBuildMatchesSequential: a cube built with Workers > 1 is
// identical to the sequential build — same cells, counts, flowgraphs and
// exception sets.
func TestParallelBuildMatchesSequential(t *testing.T) {
	ex := paperex.New()
	mk := func(workers int) *core.Cube {
		cube, err := core.Build(ex.DB, core.Config{
			MinCount:              2,
			Epsilon:               0.1,
			Plan:                  examplePlan(ex),
			MineExceptions:        true,
			SingleStageExceptions: true,
			Workers:               workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cube
	}
	seq := mk(1)
	par := mk(4)
	if seq.NumCells() != par.NumCells() {
		t.Fatalf("cell counts differ: %d vs %d", seq.NumCells(), par.NumCells())
	}
	for key, cb := range seq.Cuboids {
		pcb := par.Cuboids[key]
		sc, pc := cb.SortedCells(), pcb.SortedCells()
		for i := range sc {
			if sc[i].Count != pc[i].Count {
				t.Errorf("cuboid %s cell %d count differs", key, i)
			}
			if d := flowgraph.Divergence(sc[i].Graph, pc[i].Graph); d > 1e-12 {
				t.Errorf("cuboid %s cell %d graphs diverge", key, i)
			}
			if len(sc[i].Graph.Exceptions()) != len(pc[i].Graph.Exceptions()) {
				t.Errorf("cuboid %s cell %d exception counts differ: %d vs %d",
					key, i, len(sc[i].Graph.Exceptions()), len(pc[i].Graph.Exceptions()))
			}
		}
	}
}

// TestRollUpMonotonicity: across every materialized cell, any materialized
// item-lattice parent holds at least as many paths — the anti-monotonicity
// the iceberg pruning rests on.
func TestRollUpMonotonicity(t *testing.T) {
	cfg := datagen.Default()
	cfg.NumPaths = 800
	cfg.NumDims = 2
	ds := datagen.MustGenerate(cfg)
	cube, err := core.Build(ds.DB, core.Config{MinSupport: 0.02, Plan: ds.DefaultPlan()})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, cb := range cube.Cuboids {
		for _, cell := range cb.Cells {
			for d, l := range cb.Spec.Item {
				if l == 0 {
					continue
				}
				// Parent: dimension d one materialized level up (or '*').
				pSpec := core.CuboidSpec{Item: append(core.ItemLevel(nil), cb.Spec.Item...), PathLevel: cb.Spec.PathLevel}
				pValues := append([]hierarchy.NodeID(nil), cell.Values...)
				if l == 1 {
					pSpec.Item[d] = 0
					pValues[d] = hierarchy.Root
				} else {
					pSpec.Item[d] = l - 1
					pValues[d] = ds.Schema.Dims[d].AncestorAt(cell.Values[d], l-1)
				}
				parent, ok := cube.Cell(pSpec, pValues)
				if !ok {
					t.Fatalf("parent of frequent cell missing: %v of %v", pValues, cell.Values)
				}
				if parent.Count < cell.Count {
					t.Fatalf("parent count %d < child count %d", parent.Count, cell.Count)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no parent/child pairs checked")
	}
}
