package core

// Binary encoding of flowgraph.Flat, the columnar flowgraph layout inside
// v2 snapshot cuboid sections. Everything is varint-coded except float bits
// (fixed 8-byte little-endian IEEE, so deviations round-trip exactly).
// Outcome pools are delta-coded per distribution: outcomes are strictly
// increasing within one distribution, so each value after the first is
// stored as its positive gap from the previous one, which keeps duration
// outcomes (small, clustered integers) to one or two bytes each.
//
// The decoder never trusts a claimed count: every element of every column
// occupies at least one encoded byte, so counts are bounded by the bytes
// remaining in the section before any column is allocated (byteReader.count).
// Structural validity of the decoded columns — child ranges, offset
// monotonicity, node references — is flowgraph.Unflatten's job.

import (
	"encoding/binary"
	"math"

	"flowcube/internal/flowgraph"
)

// appendFlatGraph appends the columnar graph to buf.
func appendFlatGraph(buf []byte, f *flowgraph.Flat) []byte {
	n := f.NumNodes()
	buf = binary.AppendVarint(buf, f.Paths)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, l := range f.Locations {
		buf = binary.AppendUvarint(buf, uint64(uint32(l)))
	}
	for _, c := range f.Counts {
		buf = binary.AppendVarint(buf, c)
	}
	for i := 0; i < n; i++ {
		buf = binary.AppendUvarint(buf, uint64(f.ChildLo[i+1]-f.ChildLo[i]))
	}
	for i := 0; i < n; i++ {
		buf = binary.AppendUvarint(buf, uint64(f.TrLo[i]-f.DurLo[i]))
		buf = binary.AppendUvarint(buf, uint64(f.DurLo[i+1]-f.TrLo[i]))
	}
	buf = appendDeltaPool(buf, f.Outcomes, distBounds(f.DurLo, f.TrLo))
	for _, w := range f.Weights {
		buf = binary.AppendUvarint(buf, uint64(w))
	}

	m := len(f.ExcNode)
	buf = binary.AppendUvarint(buf, uint64(m))
	for j := 0; j < m; j++ {
		buf = binary.AppendUvarint(buf, uint64(uint32(f.ExcNode[j])))
		buf = binary.AppendVarint(buf, f.ExcSupport[j])
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.ExcDurDev[j]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.ExcTrDev[j]))
		buf = binary.AppendUvarint(buf, uint64(f.ExcPinLo[j+1]-f.ExcPinLo[j]))
		buf = binary.AppendUvarint(buf, uint64(f.ExcTrLo[j]-f.ExcDurLo[j]))
		buf = binary.AppendUvarint(buf, uint64(f.ExcDurLo[j+1]-f.ExcTrLo[j]))
	}
	for i := range f.PinDepth {
		buf = binary.AppendVarint(buf, int64(f.PinDepth[i]))
		buf = binary.AppendUvarint(buf, uint64(uint32(f.PinLoc[i])))
		buf = binary.AppendVarint(buf, f.PinDur[i])
		if f.PinDurAny[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = appendDeltaPool(buf, f.ExcOutcomes, distBounds(f.ExcDurLo, f.ExcTrLo))
	for _, w := range f.ExcWeights {
		buf = binary.AppendUvarint(buf, uint64(w))
	}
	return buf
}

// distBounds interleaves the duration and transition offsets into the flat
// list of distribution boundaries: lo[0], tr[0], lo[1], tr[1], ..., lo[n].
func distBounds(lo, tr []int32) []int32 {
	bounds := make([]int32, 0, 2*len(tr)+1)
	for i := range tr {
		bounds = append(bounds, lo[i], tr[i])
	}
	return append(bounds, lo[len(tr)])
}

// appendDeltaPool delta-codes the pooled outcome column, restarting at each
// distribution boundary: the first outcome of a distribution is zigzag
// varint, the rest are positive gaps.
func appendDeltaPool(buf []byte, pool []int64, bounds []int32) []byte {
	for b := 0; b+1 < len(bounds); b++ {
		lo, hi := bounds[b], bounds[b+1]
		if lo == hi {
			continue
		}
		buf = binary.AppendVarint(buf, pool[lo])
		for k := lo + 1; k < hi; k++ {
			buf = binary.AppendUvarint(buf, uint64(pool[k]-pool[k-1]))
		}
	}
	return buf
}

// decodeFlatGraph reads one columnar graph from r. The result still has to
// pass flowgraph.Unflatten's structural validation.
func decodeFlatGraph(r *byteReader) (*flowgraph.Flat, error) {
	f := &flowgraph.Flat{}
	var err error
	if f.Paths, err = r.varint(); err != nil {
		return nil, err
	}
	n, err := r.count("node")
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, r.corrupt("flat graph has no root node")
	}
	if f.Locations, err = r.int32Column(n); err != nil {
		return nil, err
	}
	if f.Counts, err = r.varintColumn(n); err != nil {
		return nil, err
	}
	f.ChildLo = make([]int32, n+1)
	f.ChildLo[0] = 1
	childTotal := 1
	for i := 0; i < n; i++ {
		kids, err := r.count("child")
		if err != nil {
			return nil, err
		}
		childTotal += kids
		if childTotal > n {
			return nil, r.corrupt("child ranges exceed node count")
		}
		f.ChildLo[i+1] = int32(childTotal)
	}
	f.DurLo = make([]int32, n+1)
	f.TrLo = make([]int32, n)
	total := 0
	for i := 0; i < n; i++ {
		durLen, err := r.count("duration outcome")
		if err != nil {
			return nil, err
		}
		trLen, err := r.count("transition outcome")
		if err != nil {
			return nil, err
		}
		f.DurLo[i] = int32(total)
		f.TrLo[i] = int32(total + durLen)
		total += durLen + trLen
		if total > r.rem() {
			return nil, r.corrupt("distribution pool larger than remaining section")
		}
	}
	f.DurLo[n] = int32(total)
	if f.Outcomes, err = r.deltaPool(total, distBounds(f.DurLo, f.TrLo)); err != nil {
		return nil, err
	}
	if f.Weights, err = r.uvarintColumn(total, "weight"); err != nil {
		return nil, err
	}

	m, err := r.count("exception")
	if err != nil {
		return nil, err
	}
	if m == 0 {
		return f, nil
	}
	f.ExcNode = make([]int32, m)
	f.ExcSupport = make([]int64, m)
	f.ExcDurDev = make([]float64, m)
	f.ExcTrDev = make([]float64, m)
	f.ExcPinLo = make([]int32, m+1)
	f.ExcDurLo = make([]int32, m+1)
	f.ExcTrLo = make([]int32, m)
	pinTotal, excTotal := 0, 0
	for j := 0; j < m; j++ {
		if f.ExcNode[j], err = r.int32(); err != nil {
			return nil, err
		}
		if f.ExcSupport[j], err = r.varint(); err != nil {
			return nil, err
		}
		if f.ExcDurDev[j], err = r.float64(); err != nil {
			return nil, err
		}
		if f.ExcTrDev[j], err = r.float64(); err != nil {
			return nil, err
		}
		pins, err := r.count("pin")
		if err != nil {
			return nil, err
		}
		durLen, err := r.count("exception duration outcome")
		if err != nil {
			return nil, err
		}
		trLen, err := r.count("exception transition outcome")
		if err != nil {
			return nil, err
		}
		f.ExcPinLo[j] = int32(pinTotal)
		f.ExcDurLo[j] = int32(excTotal)
		f.ExcTrLo[j] = int32(excTotal + durLen)
		pinTotal += pins
		excTotal += durLen + trLen
		if pinTotal > r.rem() || excTotal > r.rem() {
			return nil, r.corrupt("exception pools larger than remaining section")
		}
	}
	f.ExcPinLo[m] = int32(pinTotal)
	f.ExcDurLo[m] = int32(excTotal)
	f.PinDepth = make([]int32, pinTotal)
	f.PinLoc = make([]int32, pinTotal)
	f.PinDur = make([]int64, pinTotal)
	f.PinDurAny = make([]bool, pinTotal)
	for i := 0; i < pinTotal; i++ {
		depth, err := r.varint()
		if err != nil {
			return nil, err
		}
		f.PinDepth[i] = int32(depth)
		if f.PinLoc[i], err = r.int32(); err != nil {
			return nil, err
		}
		if f.PinDur[i], err = r.varint(); err != nil {
			return nil, err
		}
		b, err := r.byte()
		if err != nil {
			return nil, err
		}
		f.PinDurAny[i] = b != 0
	}
	if f.ExcOutcomes, err = r.deltaPool(excTotal, distBounds(f.ExcDurLo, f.ExcTrLo)); err != nil {
		return nil, err
	}
	if f.ExcWeights, err = r.uvarintColumn(excTotal, "exception weight"); err != nil {
		return nil, err
	}
	return f, nil
}

// skipFlatGraph advances r past one encoded flat graph without allocating
// any of its columns. The lazy loader's flat scans (cuboid summaries, cell
// sortedness checks) use it to walk a cuboid section's cells touching only
// the per-cell prefixes. Varint pools can be skipped by value count alone —
// the delta restarts change which values are zigzag-coded, not how many
// byte groups there are — so only the length headers are decoded, with the
// same remaining-bytes bounds as the full decoder. A graph that skips clean
// can still fail the full decode (pool monotonicity, Unflatten structure);
// the point here is cheap traversal, not validation.
func skipFlatGraph(r *byteReader) error {
	if err := r.skipVarints(1, "path count"); err != nil {
		return err
	}
	n, err := r.count("node")
	if err != nil {
		return err
	}
	if n < 1 {
		return r.corrupt("flat graph has no root node")
	}
	// Locations, counts, child-range widths: three varints per node.
	if err := r.skipVarints(3*n, "node columns"); err != nil {
		return err
	}
	total := 0
	for i := 0; i < n; i++ {
		durLen, err := r.count("duration outcome")
		if err != nil {
			return err
		}
		trLen, err := r.count("transition outcome")
		if err != nil {
			return err
		}
		total += durLen + trLen
		if total > r.rem() {
			return r.corrupt("distribution pool larger than remaining section")
		}
	}
	// Outcome pool and weight column: one varint group per value each.
	if err := r.skipVarints(2*total, "distribution pools"); err != nil {
		return err
	}

	m, err := r.count("exception")
	if err != nil {
		return err
	}
	if m == 0 {
		return nil
	}
	pinTotal, excTotal := 0, 0
	for j := 0; j < m; j++ {
		if err := r.skipVarints(2, "exception header"); err != nil {
			return err
		}
		if err := r.skipBytes(16, "exception deviations"); err != nil {
			return err
		}
		pins, err := r.count("pin")
		if err != nil {
			return err
		}
		durLen, err := r.count("exception duration outcome")
		if err != nil {
			return err
		}
		trLen, err := r.count("exception transition outcome")
		if err != nil {
			return err
		}
		pinTotal += pins
		excTotal += durLen + trLen
		if pinTotal > r.rem() || excTotal > r.rem() {
			return r.corrupt("exception pools larger than remaining section")
		}
	}
	for i := 0; i < pinTotal; i++ {
		if err := r.skipVarints(3, "pin"); err != nil {
			return err
		}
		if err := r.skipBytes(1, "pin flag"); err != nil {
			return err
		}
	}
	return r.skipVarints(2*excTotal, "exception pools")
}
