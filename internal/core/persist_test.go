package core_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ex, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Tau:                   0.5,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	cube.MarkRedundancy(0.5)

	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.MinCount() != cube.MinCount() {
		t.Errorf("minCount: %d vs %d", loaded.MinCount(), cube.MinCount())
	}
	if len(loaded.Cuboids) != len(cube.Cuboids) {
		t.Fatalf("cuboids: %d vs %d", len(loaded.Cuboids), len(cube.Cuboids))
	}
	if loaded.NumCells() != cube.NumCells() {
		t.Fatalf("cells: %d vs %d", loaded.NumCells(), cube.NumCells())
	}

	// Every cell round-trips: count, flags, and an identical flowgraph
	// model (zero divergence both ways).
	for key, cb := range cube.Cuboids {
		lcb := loaded.Cuboids[key]
		if lcb == nil {
			t.Fatalf("cuboid %s missing after load", key)
		}
		orig := cb.SortedCells()
		got := lcb.SortedCells()
		if len(orig) != len(got) {
			t.Fatalf("cuboid %s: %d cells vs %d", key, len(got), len(orig))
		}
		for i := range orig {
			o, l := orig[i], got[i]
			if o.Count != l.Count || o.Redundant != l.Redundant ||
				math.Abs(o.Similarity-l.Similarity) > 1e-12 {
				t.Errorf("cuboid %s cell %d metadata mismatch", key, i)
			}
			if o.Graph == nil {
				continue
			}
			if l.Graph.Paths() != o.Graph.Paths() {
				t.Errorf("cuboid %s cell %d path count mismatch", key, i)
			}
			if d := flowgraph.Divergence(o.Graph, l.Graph) + flowgraph.Divergence(l.Graph, o.Graph); d > 1e-12 {
				t.Errorf("cuboid %s cell %d graphs diverge by %g", key, i, d)
			}
			if len(l.Graph.Exceptions()) != len(o.Graph.Exceptions()) {
				t.Errorf("cuboid %s cell %d exceptions: %d vs %d",
					key, i, len(l.Graph.Exceptions()), len(o.Graph.Exceptions()))
			}
		}
	}

	// Queries behave identically, including roll-up inference.
	spec := core.CuboidSpec{Item: core.ItemLevel{3, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{ex.Product.MustLookup("sandals"), ex.Brand.MustLookup("nike")}
	g1, _, e1, ok1 := cube.QueryGraph(spec, values)
	g2, _, e2, ok2 := loaded.QueryGraph(spec, values)
	if ok1 != ok2 || e1 != e2 {
		t.Fatalf("query behaviour changed after load")
	}
	if d := flowgraph.Divergence(g1, g2); d > 1e-12 {
		t.Errorf("inferred graphs diverge by %g", d)
	}

	// The loaded cube still supports redundancy re-marking.
	loaded.MarkRedundancy(0.5)
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := core.Load(strings.NewReader("not a gob stream")); err == nil {
		t.Errorf("garbage accepted")
	}
	if _, err := core.Load(bytes.NewReader(nil)); err == nil {
		t.Errorf("empty stream accepted")
	}
}

func TestSaveLoadPreservesExceptionContent(t *testing.T) {
	ex, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	spec := core.CuboidSpec{Item: core.ItemLevel{2, 2}, PathLevel: 0}
	values := []hierarchy.NodeID{ex.Product.MustLookup("outerwear"), ex.Brand.MustLookup("nike")}
	orig, _ := cube.Cell(spec, values)
	if len(orig.Graph.Exceptions()) == 0 {
		t.Fatal("fixture has no exceptions to test")
	}

	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := loaded.Cell(spec, values)
	if !ok {
		t.Fatal("cell missing after load")
	}
	ox, lx := orig.Graph.Exceptions(), cell.Graph.Exceptions()
	if len(ox) != len(lx) {
		t.Fatalf("exception count: %d vs %d", len(lx), len(ox))
	}
	for i := range ox {
		if ox[i].Support != lx[i].Support {
			t.Errorf("exception %d support mismatch", i)
		}
		if ox[i].Transitions.String() != lx[i].Transitions.String() {
			t.Errorf("exception %d transitions mismatch", i)
		}
		if len(ox[i].Condition) != len(lx[i].Condition) {
			t.Errorf("exception %d condition mismatch", i)
		}
		if ox[i].Node.Depth != lx[i].Node.Depth || ox[i].Node.Location != lx[i].Node.Location {
			t.Errorf("exception %d node mismatch", i)
		}
	}
}
