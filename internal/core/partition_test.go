package core_test

import (
	"bytes"
	"strings"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/hierarchy"
)

// partitionedExample builds the full-featured example cube (ledger,
// exceptions, redundancy marks) and filters it into n disjoint parts by a
// value hash, the same shape internal/cluster produces.
func partitionedExample(t *testing.T, n int) (*core.Cube, []*core.Cube) {
	t.Helper()
	_, cube := buildExample(t, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Tau:                   0.5,
		MineExceptions:        true,
		SingleStageExceptions: true,
		DeltaLedger:           true,
	})
	cube.MarkRedundancy(0.5)

	owner := func(values []hierarchy.NodeID) int {
		sum := 0
		for _, v := range values {
			sum += int(v)
		}
		return sum % n
	}
	parts := make([]*core.Cube, n)
	for i := range parts {
		i := i
		parts[i] = cube.FilterCells(func(values []hierarchy.NodeID) bool { return owner(values) == i })
	}
	return cube, parts
}

// TestFilterCellsIsExhaustiveAndDisjoint checks the partition contract the
// cluster split relies on: every cell lands in exactly one part, parts keep
// the full cuboid lattice (possibly with empty cuboids), and no part
// invents cells.
func TestFilterCellsIsExhaustiveAndDisjoint(t *testing.T) {
	cube, parts := partitionedExample(t, 3)

	total := 0
	for _, p := range parts {
		total += p.NumCells()
		if got, want := len(p.Cuboids), len(cube.Cuboids); got != want {
			t.Fatalf("part has %d cuboids, want the full lattice of %d", got, want)
		}
	}
	if total != cube.NumCells() {
		t.Fatalf("parts hold %d cells in total, original has %d", total, cube.NumCells())
	}
	for key, cb := range cube.Cuboids {
		for cellKey := range cb.Cells {
			owners := 0
			for _, p := range parts {
				if _, ok := p.Cuboids[key].Cells[cellKey]; ok {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("cell %s of cuboid %s lives in %d parts, want exactly 1", cellKey, key, owners)
			}
		}
	}
}

// TestMergeRestoresSaveDigest checks that splitting and merging is lossless
// at the byte level: the merged cube saves to exactly the bytes the
// original saves to, ledger included. This is the property that lets a
// sharded cluster be verified against (and rebuilt into) its unsplit
// snapshot.
func TestMergeRestoresSaveDigest(t *testing.T) {
	cube, parts := partitionedExample(t, 3)

	merged, err := core.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	want, wn := saveDigest(t, cube)
	got, gn := saveDigest(t, merged)
	if want != got {
		t.Fatalf("merged save differs from original: %x (%d bytes) vs %x (%d bytes)", got, gn, want, wn)
	}
}

// TestMergeRejectsOverlappingShards checks duplicate-cell detection: the
// same shard merged twice must fail loudly, not double-count.
func TestMergeRejectsOverlappingShards(t *testing.T) {
	_, parts := partitionedExample(t, 2)
	if _, err := core.Merge([]*core.Cube{parts[0], parts[0]}); err == nil {
		t.Fatal("merging the same shard twice succeeded, want a duplicate-cell error")
	} else if !strings.Contains(err.Error(), "already merged") {
		t.Fatalf("unexpected duplicate-merge error: %v", err)
	}
}

// TestLoadMetaStripsCells checks the router's preamble load: thresholds,
// schema and plan survive, while cells and the ledger are dropped, for both
// snapshot generations.
func TestLoadMetaStripsCells(t *testing.T) {
	cube, _ := partitionedExample(t, 2)

	var v2, v1 bytes.Buffer
	if err := cube.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if err := cube.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"v2": &v2, "v1": &v1} {
		meta, err := core.LoadMeta(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if meta.NumCells() != 0 {
			t.Fatalf("%s: meta holds %d cells, want none", name, meta.NumCells())
		}
		if meta.MinCount() != cube.MinCount() {
			t.Fatalf("%s: meta min count %d, want %d", name, meta.MinCount(), cube.MinCount())
		}
		if got, want := meta.Config.Epsilon, cube.Config.Epsilon; got != want {
			t.Fatalf("%s: meta epsilon %v, want %v", name, got, want)
		}
		if got, want := meta.Config.Tau, cube.Config.Tau; got != want {
			t.Fatalf("%s: meta tau %v, want %v", name, got, want)
		}
		if got, want := len(meta.Schema.Dims), len(cube.Schema.Dims); got != want {
			t.Fatalf("%s: meta has %d dimensions, want %d", name, got, want)
		}
		if got, want := len(meta.Symbols.PathLevels()), len(cube.Symbols.PathLevels()); got != want {
			t.Fatalf("%s: meta has %d path levels, want %d", name, got, want)
		}
	}
}
