package core

// Legacy snapshot format v1: encoding/gob over explicit recursive DTOs.
// Save now writes the columnar v2 format (snapshotv2.go); this file keeps
// the v1 codec so that (a) Load still opens every previously materialized
// snapshot — LoadWith sniffs the magic and dispatches here — and (b) the
// persist benchmarks and the golden-fixture compat test retain the gob
// baseline to measure and regenerate against (SaveV1).

import (
	"encoding/gob"
	"fmt"
	"io"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
	"flowcube/internal/transact"
)

// persistMagic guards against feeding arbitrary gob streams into Load.
const persistMagic = "flowcube-v1"

type hierarchyDTO struct {
	Dimension string
	// Names and Parents describe nodes 1..n (the root is implicit);
	// Parents index into the same node numbering, 0 = root.
	Names   []string
	Parents []int32
}

type cutDTO struct{ Nodes []int32 }

type pathLevelDTO struct {
	Cut  cutDTO
	Time pathdb.TimeLevel
}

type distDTO struct {
	Outcomes []int64
	Counts   []int64
}

type nodeDTO struct {
	Location    int32
	Durations   distDTO
	Transitions distDTO
	Count       int64
	Children    []nodeDTO
}

type pinDTO struct {
	Depth    int
	Location int32
	Duration int64
	DurAny   bool
}

type exceptionDTO struct {
	Prefix              []int32
	Condition           []pinDTO
	Support             int64
	Durations           distDTO
	Transitions         distDTO
	DurationDeviation   float64
	TransitionDeviation float64
}

type graphDTO struct {
	Paths      int64
	Root       nodeDTO
	Exceptions []exceptionDTO
}

type cellDTO struct {
	Values     []int32
	Count      int64
	Redundant  bool
	Similarity float64
	Graph      graphDTO
}

type cuboidDTO struct {
	ItemLevel []int
	PathLevel int
	Cells     []cellDTO
}

type cubeDTO struct {
	Magic      string
	Location   hierarchyDTO
	Dims       []hierarchyDTO
	DimLevels  [][]int
	PathLevels []pathLevelDTO
	MinCount   int64
	Epsilon    float64
	Tau        float64
	Cuboids    []cuboidDTO
}

func encodeHierarchy(h *hierarchy.Hierarchy) hierarchyDTO {
	dto := hierarchyDTO{Dimension: h.Dimension()}
	for id := hierarchy.NodeID(1); int(id) < h.Len(); id++ {
		dto.Names = append(dto.Names, h.Name(id))
		dto.Parents = append(dto.Parents, int32(h.Parent(id)))
	}
	return dto
}

func decodeHierarchy(dto hierarchyDTO) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(dto.Dimension)
	if len(dto.Names) != len(dto.Parents) {
		return nil, fmt.Errorf("core: corrupt hierarchy %q", dto.Dimension)
	}
	for i, name := range dto.Names {
		p := hierarchy.NodeID(dto.Parents[i])
		if int(p) >= h.Len() {
			return nil, fmt.Errorf("core: hierarchy %q: node %q references later parent", dto.Dimension, name)
		}
		if _, err := h.Add(h.Name(p), name); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func encodeDist(m *stats.Multinomial) distDTO {
	var dto distDTO
	for _, v := range m.Outcomes() {
		dto.Outcomes = append(dto.Outcomes, v)
		dto.Counts = append(dto.Counts, m.Count(v))
	}
	return dto
}

func decodeDist(dto distDTO) (*stats.Multinomial, error) {
	if len(dto.Outcomes) != len(dto.Counts) {
		return nil, fmt.Errorf("core: corrupt distribution")
	}
	m := stats.NewMultinomial()
	for i, v := range dto.Outcomes {
		if dto.Counts[i] < 0 {
			return nil, fmt.Errorf("core: negative count in distribution")
		}
		m.Add(v, dto.Counts[i])
	}
	return m, nil
}

func encodeGraph(g *flowgraph.Graph) graphDTO {
	var encNode func(n *flowgraph.Node) nodeDTO
	encNode = func(n *flowgraph.Node) nodeDTO {
		dto := nodeDTO{
			Location:    int32(n.Location),
			Durations:   encodeDist(n.Durations),
			Transitions: encodeDist(n.Transitions),
			Count:       n.Count,
		}
		for _, c := range n.Children() {
			dto.Children = append(dto.Children, encNode(c))
		}
		return dto
	}
	dto := graphDTO{Paths: g.Paths(), Root: encNode(g.Root())}
	for _, x := range g.Exceptions() {
		xd := exceptionDTO{
			Support:             x.Support,
			Durations:           encodeDist(x.Durations),
			Transitions:         encodeDist(x.Transitions),
			DurationDeviation:   x.DurationDeviation,
			TransitionDeviation: x.TransitionDeviation,
		}
		for _, l := range x.Node.Prefix() {
			xd.Prefix = append(xd.Prefix, int32(l))
		}
		for _, p := range x.Condition {
			xd.Condition = append(xd.Condition, pinDTO{
				Depth: p.Depth, Location: int32(p.Location), Duration: p.Duration, DurAny: p.DurAny,
			})
		}
		dto.Exceptions = append(dto.Exceptions, xd)
	}
	return dto
}

func decodeGraph(dto graphDTO, loc *hierarchy.Hierarchy, level pathdb.PathLevel) (*flowgraph.Graph, error) {
	g := flowgraph.New(loc, level, nil)
	var walk func(parent []hierarchy.NodeID, dto nodeDTO) error
	walk = func(prefix []hierarchy.NodeID, nd nodeDTO) error {
		for _, c := range nd.Children {
			seq := append(prefix, hierarchy.NodeID(c.Location))
			dur, err := decodeDist(c.Durations)
			if err != nil {
				return err
			}
			tr, err := decodeDist(c.Transitions)
			if err != nil {
				return err
			}
			if err := g.Graft(seq, c.Count, dur, tr); err != nil {
				return err
			}
			if err := walk(seq, c); err != nil {
				return err
			}
		}
		return nil
	}
	rootTr, err := decodeDist(dto.Root.Transitions)
	if err != nil {
		return nil, err
	}
	g.SetRootTransitions(dto.Paths, rootTr)
	if err := walk(nil, dto.Root); err != nil {
		return nil, err
	}
	for _, xd := range dto.Exceptions {
		prefix := make([]hierarchy.NodeID, len(xd.Prefix))
		for i, l := range xd.Prefix {
			prefix[i] = hierarchy.NodeID(l)
		}
		pins := make([]flowgraph.StagePin, len(xd.Condition))
		for i, p := range xd.Condition {
			pins[i] = flowgraph.StagePin{
				Depth: p.Depth, Location: hierarchy.NodeID(p.Location), Duration: p.Duration, DurAny: p.DurAny,
			}
		}
		dur, err := decodeDist(xd.Durations)
		if err != nil {
			return nil, err
		}
		tr, err := decodeDist(xd.Transitions)
		if err != nil {
			return nil, err
		}
		if err := g.GraftException(prefix, pins, xd.Support, dur, tr, xd.DurationDeviation, xd.TransitionDeviation); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SaveV1 serializes the cube in the legacy v1 gob format. New snapshots
// should use Save (format v2); SaveV1 exists as the benchmark baseline and
// to regenerate the v1 golden compat fixture.
func (c *Cube) SaveV1(w io.Writer) error {
	dto := cubeDTO{
		Magic:     persistMagic,
		Location:  encodeHierarchy(c.Schema.Location),
		DimLevels: c.Symbols.DimLevels(),
		MinCount:  c.minCount,
		Epsilon:   c.Config.Epsilon,
		Tau:       c.Config.Tau,
	}
	for _, h := range c.Schema.Dims {
		dto.Dims = append(dto.Dims, encodeHierarchy(h))
	}
	for _, pl := range c.Symbols.PathLevels() {
		pld := pathLevelDTO{Time: pl.Time}
		for _, n := range pl.Cut.Nodes() {
			pld.Cut.Nodes = append(pld.Cut.Nodes, int32(n))
		}
		dto.PathLevels = append(dto.PathLevels, pld)
	}
	// Cuboids (and, via SortedCells, their cells) are encoded in sorted key
	// order so two saves of the same cube are byte-identical.
	for _, cb := range c.sortedCuboids() {
		cbd := cuboidDTO{ItemLevel: cb.Spec.Item, PathLevel: cb.Spec.PathLevel}
		for _, cell := range cb.SortedCells() {
			cd := cellDTO{
				Count:      cell.Count,
				Redundant:  cell.Redundant,
				Similarity: cell.Similarity,
			}
			for _, v := range cell.Values {
				cd.Values = append(cd.Values, int32(v))
			}
			if cell.Graph != nil {
				cd.Graph = encodeGraph(cell.Graph)
			}
			cbd.Cells = append(cbd.Cells, cd)
		}
		dto.Cuboids = append(dto.Cuboids, cbd)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// loadV1 reconstructs a cube from the legacy v1 gob stream.
func loadV1(r io.Reader) (*Cube, error) {
	var dto cubeDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: load cube: %w", err)
	}
	if dto.Magic != persistMagic {
		return nil, fmt.Errorf("core: not a flowcube file (magic %q)", dto.Magic)
	}
	location, err := decodeHierarchy(dto.Location)
	if err != nil {
		return nil, err
	}
	dims := make([]*hierarchy.Hierarchy, len(dto.Dims))
	for i, hd := range dto.Dims {
		if dims[i], err = decodeHierarchy(hd); err != nil {
			return nil, err
		}
	}
	schema, err := pathdb.NewSchema(location, dims...)
	if err != nil {
		return nil, err
	}
	levels := make([]pathdb.PathLevel, len(dto.PathLevels))
	for i, pld := range dto.PathLevels {
		nodes := make([]hierarchy.NodeID, len(pld.Cut.Nodes))
		for j, n := range pld.Cut.Nodes {
			nodes[j] = hierarchy.NodeID(n)
		}
		cut, err := hierarchy.NewCut(location, nodes)
		if err != nil {
			return nil, err
		}
		levels[i] = pathdb.PathLevel{Cut: cut, Time: pld.Time}
	}
	plan := transact.Plan{DimLevels: dto.DimLevels, PathLevels: levels}
	syms, err := transact.NewSymbols(schema, plan)
	if err != nil {
		return nil, err
	}

	cube := &Cube{
		Schema:   schema,
		Config:   Config{MinCount: dto.MinCount, Epsilon: dto.Epsilon, Tau: dto.Tau, Plan: plan},
		Symbols:  syms,
		Cuboids:  make(map[string]*Cuboid),
		minCount: dto.MinCount,
	}
	for _, cbd := range dto.Cuboids {
		spec := CuboidSpec{Item: cbd.ItemLevel, PathLevel: cbd.PathLevel}
		if err := validateSpec(spec, syms, schema); err != nil {
			return nil, err
		}
		cb := &Cuboid{Spec: spec, Cells: make(map[string]*Cell, len(cbd.Cells))}
		for _, cd := range cbd.Cells {
			values := make([]hierarchy.NodeID, len(cd.Values))
			for i, v := range cd.Values {
				values[i] = hierarchy.NodeID(v)
			}
			g, err := decodeGraph(cd.Graph, location, levels[cbd.PathLevel])
			if err != nil {
				return nil, err
			}
			cb.Cells[cellKey(values)] = &Cell{
				Values:     values,
				Count:      cd.Count,
				Redundant:  cd.Redundant,
				Similarity: cd.Similarity,
				Graph:      g,
			}
		}
		cube.Cuboids[spec.Key()] = cb
	}
	return cube, nil
}
