//go:build linux && !nommap

package core

// mmap-backed snapshot data for the lazy loader: the file is mapped
// read-only and views are zero-copy subslices of the mapping. The fd is
// closed right after mapping — the mapping keeps the pages alive — so a
// lazily opened cube costs no descriptor for its lifetime.

import (
	"fmt"
	"os"
	"syscall"
)

// snapMapped reports whether this build serves lazy cubes from an mmap
// (true here; false in the pread fallback).
const snapMapped = true

type mmapData struct {
	b []byte
}

// openSnapshotData maps f read-only and takes ownership of it: the
// descriptor is closed before returning (the mapping survives it).
func openSnapshotData(f *os.File, size int64) (snapData, error) {
	if size == 0 {
		_ = f.Close() // nothing mapped; close error carries no information
		return &mmapData{}, nil
	}
	if size != int64(int(size)) {
		_ = f.Close()
		return nil, fmt.Errorf("core: snapshot of %d bytes exceeds the addressable mapping size", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("core: mmap snapshot: %w", err)
	}
	return &mmapData{b: b}, nil
}

func (d *mmapData) size() int64 { return int64(len(d.b)) }

func (d *mmapData) view(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(d.b)) {
		return nil, fmt.Errorf("core: snapshot view [%d, %d) outside the %d-byte mapping", off, off+n, len(d.b))
	}
	return d.b[off : off+n : off+n], nil
}

func (d *mmapData) close() error {
	if d.b == nil {
		return nil
	}
	b := d.b
	d.b = nil
	return syscall.Munmap(b)
}
