package core

import (
	"context"
	"fmt"
	"sync"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// Build materializes the iceberg flowcube for the path database under the
// configuration: it encodes the database (§5 transaction transformation),
// runs the Shared algorithm to find frequent cells and frequent path
// segments at every materialized abstraction level, constructs a flowgraph
// for every frequent cell of every requested cuboid, mines exceptions from
// the frequent segments, and — when τ is set — marks redundant cells.
// It rejects an invalid configuration with a *ConfigError, and delegates
// to BuildContext with a background context.
func Build(db *pathdb.DB, cfg Config) (*Cube, error) {
	return BuildContext(context.Background(), db, cfg)
}

// prepare runs everything that precedes the populate scan — encoding,
// mining, cuboid validation, and frequent-cell instantiation — and returns
// the cube with empty cells plus the per-cell exception conditions. Split
// from Build so benchmarks can time populate in isolation (PopulateBench).
func prepare(db *pathdb.DB, cfg Config) (*Cube, cellConds, error) {
	syms, err := transact.NewSymbols(db.Schema, cfg.Plan)
	if err != nil {
		return nil, nil, err
	}
	txs := syms.Encode(db)

	mopts := mining.SharedOptions(cfg.MinSupport)
	mopts.Workers = cfg.Workers
	if cfg.MiningOptions != nil {
		mopts = *cfg.MiningOptions
	}
	if cfg.MinCount > 0 {
		mopts.MinCount = cfg.MinCount
	}
	res, err := mining.Mine(syms, txs, mopts)
	if err != nil {
		return nil, nil, err
	}
	if res.Aborted {
		return nil, nil, fmt.Errorf("core: mining aborted by candidate limit; raise the limit or the minimum support")
	}
	minCount := res.MinCount

	cube := &Cube{
		Schema:   db.Schema,
		Config:   cfg,
		Symbols:  syms,
		Mining:   res,
		Cuboids:  make(map[string]*Cuboid),
		minCount: minCount,
	}

	specs := cfg.Cuboids
	if specs == nil {
		specs = specsFromPlan(syms)
	}
	for _, spec := range specs {
		if err := validateSpec(spec, syms, db.Schema); err != nil {
			return nil, nil, err
		}
		cube.Cuboids[spec.Key()] = &Cuboid{Spec: spec, Cells: make(map[string]*Cell)}
	}

	// Instantiate frequent cells from the mining output, and collect the
	// exception conditions per cell from the mixed dim+stage itemsets.
	conds := cube.instantiateCells(db, res)
	return cube, conds, nil
}

func validateSpec(spec CuboidSpec, syms *transact.Symbols, schema *pathdb.Schema) error {
	if len(spec.Item) != len(schema.Dims) {
		return fmt.Errorf("core: cuboid %s has %d item levels, schema has %d dimensions",
			spec.Key(), len(spec.Item), len(schema.Dims))
	}
	if spec.PathLevel < 0 || spec.PathLevel >= len(syms.PathLevels()) {
		return fmt.Errorf("core: cuboid %s references path level %d, plan has %d",
			spec.Key(), spec.PathLevel, len(syms.PathLevels()))
	}
	dimLevels := syms.DimLevels()
	for d, l := range spec.Item {
		if l == 0 {
			continue
		}
		ok := false
		for _, ml := range dimLevels[d] {
			if ml == l {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: cuboid %s uses unmaterialized level %d of dimension %q",
				spec.Key(), l, schema.Dims[d].Dimension())
		}
	}
	return nil
}

// cellConds accumulates exception conditions per cuboid-cell.
type cellConds map[string]map[string][][]flowgraph.StagePin

// instantiateCells creates the frequent cells of every materialized cuboid
// from the mining result and returns the per-cell exception conditions.
func (c *Cube) instantiateCells(db *pathdb.DB, res *mining.Result) cellConds {
	syms := c.Symbols
	m := len(db.Schema.Dims)
	conds := make(cellConds)

	// The apex item level (all '*') is frequent whenever the database is.
	if int64(db.Len()) >= c.minCount {
		values := make([]hierarchy.NodeID, m)
		for i := range values {
			values[i] = hierarchy.Root
		}
		c.addCell(apexLevel(m), values, int64(db.Len()))
	}

	for _, counted := range res.All() {
		il, values, stages, ok := c.classify(counted.Set)
		if !ok {
			continue
		}
		if len(stages) == 0 {
			// A pure item-dimension itemset is a frequent cell of the
			// cuboid at its item level — for every path level.
			c.addCell(il, values, counted.Count)
			continue
		}
		// A mixed itemset is a frequent path segment within a cell: an
		// exception condition, provided all stages sit at one path level.
		level, pins, ok := stagePins(syms, stages)
		if !ok {
			continue
		}
		spec := CuboidSpec{Item: il, PathLevel: level}
		cb := c.Cuboids[spec.Key()]
		if cb == nil {
			continue
		}
		key := cellKey(values)
		if conds[spec.Key()] == nil {
			conds[spec.Key()] = make(map[string][][]flowgraph.StagePin)
		}
		conds[spec.Key()][key] = append(conds[spec.Key()][key], pins)
	}
	return conds
}

func apexLevel(m int) ItemLevel {
	il := make(ItemLevel, m)
	return il
}

// classify splits a frequent itemset into its item-dimension part (at most
// one value per dimension — sets violating that, which only the unpruned
// Basic run produces, are skipped) and its stage part.
func (c *Cube) classify(set []transact.Item) (ItemLevel, []hierarchy.NodeID, []transact.Item, bool) {
	syms := c.Symbols
	m := len(c.Schema.Dims)
	il := make(ItemLevel, m)
	values := make([]hierarchy.NodeID, m)
	for i := range values {
		values[i] = hierarchy.Root
	}
	var stages []transact.Item
	for _, it := range set {
		if syms.IsStage(it) {
			stages = append(stages, it)
			continue
		}
		d := syms.Dim(it)
		if il[d] != 0 {
			return nil, nil, nil, false // two values of one dimension
		}
		lvl := syms.Level(it)
		if lvl == 0 {
			continue // '*' item (Basic encoding); contributes nothing
		}
		il[d] = lvl
		values[d] = syms.Node(it)
	}
	return il, values, stages, true
}

// stagePins converts an all-stage itemset into exception condition pins.
// All stages must share one path level; conditions whose pins are all
// duration-'*' are vacuous (the prefix tree already conditions on
// locations) and rejected.
func stagePins(syms *transact.Symbols, stages []transact.Item) (int, []flowgraph.StagePin, bool) {
	level := syms.StageLevel(stages[0])
	pins := make([]flowgraph.StagePin, 0, len(stages))
	concrete := false
	for _, st := range stages {
		if syms.StageLevel(st) != level {
			return 0, nil, false
		}
		seq := syms.StageSeq(st)
		dur, hasDur := syms.StageDuration(st)
		if hasDur {
			concrete = true
		}
		pins = append(pins, flowgraph.StagePin{
			Depth:    len(seq),
			Location: seq[len(seq)-1],
			Duration: dur,
			DurAny:   !hasDur,
		})
	}
	if !concrete {
		return 0, nil, false
	}
	return level, pins, true
}

// addCell registers a frequent cell in every materialized cuboid sharing
// its item level.
func (c *Cube) addCell(il ItemLevel, values []hierarchy.NodeID, count int64) {
	for pl := range c.Symbols.PathLevels() {
		spec := CuboidSpec{Item: il, PathLevel: pl}
		cb := c.Cuboids[spec.Key()]
		if cb == nil {
			continue
		}
		key := cellKey(values)
		if _, dup := cb.Cells[key]; dup {
			continue
		}
		cb.Cells[key] = &Cell{
			Values:     append([]hierarchy.NodeID(nil), values...),
			Count:      count,
			Similarity: SimilarityUnknown,
		}
	}
}

// populate assigns every record to its cell in every materialized cuboid
// and builds the flowgraph measures.
func (c *Cube) populate(db *pathdb.DB) {
	targets := c.populateTargets()
	c.assignCells(db, targets)
	c.buildGraphs(db, targets)
}

// populateTargets lists the cuboids with at least one frequent cell. Sorted
// cuboid order keeps slot numbering and the graph job list — and therefore
// worker scheduling and any profile of it — identical across runs.
func (c *Cube) populateTargets() []*Cuboid {
	var targets []*Cuboid
	for _, cb := range c.sortedCuboids() {
		if len(cb.Cells) > 0 {
			targets = append(targets, cb)
		}
	}
	return targets
}

// assignCells routes every record to its cell in every target cuboid using
// the packed-key assignment plan. The record range is split into contiguous
// chunks, one per worker; each worker appends tids into its own per-slot
// buckets, and the buckets are concatenated in worker order — which, because
// the chunks cover ascending tid ranges, reproduces the sequential scan's
// tid order exactly.
func (c *Cube) assignCells(db *pathdb.DB, targets []*Cuboid) {
	if len(targets) == 0 {
		return
	}
	plan := newAssignPlan(db.Schema, targets)
	n := len(db.Records)
	workers := c.Config.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	buckets := make([][][]int32, workers)
	if workers == 1 {
		buckets[0] = make([][]int32, len(plan.slots))
		plan.assign(db, 0, n, buckets[0])
	} else {
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				b := make([][]int32, len(plan.slots))
				plan.assign(db, lo, hi, b)
				buckets[w] = b
			}(w, lo, hi)
		}
		wg.Wait()
	}
	for slot, cell := range plan.slots {
		total := 0
		for _, b := range buckets {
			if b != nil {
				total += len(b[slot])
			}
		}
		if total == 0 {
			continue
		}
		tids := make([]int32, 0, total)
		for _, b := range buckets {
			if b != nil {
				tids = append(tids, b[slot]...)
			}
		}
		cell.tids = tids
	}
}

// buildGraphs constructs the flowgraph measure of every cell from its
// assigned tids; cells are independent, so the work spreads across workers.
func (c *Cube) buildGraphs(db *pathdb.DB, targets []*Cuboid) {
	type job struct {
		cell *Cell
		pl   pathdb.PathLevel
	}
	var jobs []job
	for _, cb := range targets {
		pl := c.Symbols.PathLevels()[cb.Spec.PathLevel]
		for _, cell := range cb.SortedCells() {
			jobs = append(jobs, job{cell: cell, pl: pl})
		}
	}
	c.forEach(len(jobs), func(i int) {
		j := jobs[i]
		g := flowgraph.New(db.Schema.Location, j.pl, c.Config.Merge)
		for _, tid := range j.cell.tids {
			g.AddPath(db.Records[tid].Path)
		}
		j.cell.Graph = g
	})
}

// PopulateBench prepares a cube (encode, mine, instantiate cells) and
// returns closures over it for benchmarking populate in isolation: run
// re-executes the full populate pass (assignment plus flowgraphs) and
// assign re-executes only the record→cell assignment. Both reset the cells
// first so every call does full work on identical input. The cube is
// returned so callers can verify the benched state.
func PopulateBench(db *pathdb.DB, cfg Config) (cube *Cube, run, assign func(), err error) {
	cube, _, err = prepare(db, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	targets := cube.populateTargets()
	reset := func() {
		for _, cb := range targets {
			for _, cell := range cb.Cells {
				cell.tids = nil
				cell.Graph = nil
			}
		}
	}
	run = func() {
		reset()
		cube.populate(db)
	}
	assign = func() {
		reset()
		cube.assignCells(db, targets)
	}
	return cube, run, assign, nil
}

// forEach runs fn over [0,n) — concurrently when Config.Workers > 1. Each
// index touches disjoint state (one cell), so no synchronization beyond
// the join is needed.
func (c *Cube) forEach(n int, fn func(i int)) {
	workers := c.Config.Workers
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// mineExceptions runs the holistic part of the measure: per cell, check the
// frequent-segment conditions (and optionally all single-stage conditions)
// against the cell's paths. Cells are independent, so the work is spread
// across Config.Workers.
func (c *Cube) mineExceptions(db *pathdb.DB, conds cellConds) {
	type job struct {
		cell  *Cell
		conds [][]flowgraph.StagePin
	}
	// Sorted order for the same reason as populate: a deterministic job
	// list, so runs are comparable.
	var jobs []job
	for _, cb := range c.sortedCuboids() {
		specKey := cb.Spec.Key()
		for _, cell := range cb.SortedCells() {
			if cell.Graph == nil {
				continue
			}
			ck := cellKey(cell.Values)
			cellConds := conds[specKey][ck]
			// Warm the condition cache (conds.go) so the incremental path
			// knows each cell's full condition set without re-mining it.
			c.SetCachedConds(specKey, ck, cellConds)
			jobs = append(jobs, job{cell: cell, conds: cellConds})
		}
	}
	c.forEach(len(jobs), func(i int) {
		j := jobs[i]
		paths := make([]pathdb.Path, len(j.cell.tids))
		for k, tid := range j.cell.tids {
			paths[k] = db.Records[tid].Path
		}
		if c.Config.SingleStageExceptions {
			j.cell.Graph.MineExceptions(paths, c.Config.Epsilon, c.minCount)
		}
		if len(j.conds) > 0 {
			j.cell.Graph.MineExceptionsFor(paths, j.conds, c.Config.Epsilon, c.minCount)
		}
	})
}
