package core

// The v2 query surface: one Query value describing an OLAP operation over
// the cuboid lattice, answered by Cube.Answer with typed provenance. A cell
// that was never materialized — pruned by the materialization planner, or
// simply outside the build's cuboid list — is reconstructed exactly at
// query time by folding the flowgraphs of a materialized descendant cuboid
// whose matching cells partition the target cell's paths (flowgraph.Fold;
// paper Lemma 4.2). Exactness is certified per cell: the folded counts must
// sum to the cell's census count from a materialized cuboid at the same
// item level, so a fold over an iceberg-truncated descendant (some sub-δ
// children missing) is refused rather than silently wrong, and the answer
// falls back to the nearest materialized ancestor exactly as the v1 path
// does. See DESIGN.md §12.

import (
	"context"
	"errors"
	"fmt"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

// Op is the OLAP operation a Query performs.
type Op int

const (
	// OpCell answers one cell of one cuboid.
	OpCell Op = iota
	// OpRollUp answers the cell's parent along Query.Dim: the same cell
	// with that dimension generalized one materialized level (or to '*').
	OpRollUp
	// OpDrillDown answers the children of the cell along Query.Dim: every
	// cell one materialized level finer that generalizes back to it.
	OpDrillDown
	// OpSlice answers every cell of the cuboid matching the single
	// Query.Select entry.
	OpSlice
	// OpDice answers every cell of the cuboid matching all Query.Select
	// entries.
	OpDice
)

// String returns the wire name used by /v2/query's op parameter.
func (op Op) String() string {
	switch op {
	case OpCell:
		return "cell"
	case OpRollUp:
		return "rollup"
	case OpDrillDown:
		return "drilldown"
	case OpSlice:
		return "slice"
	case OpDice:
		return "dice"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Selector restricts one dimension to one concept for OpSlice and OpDice.
// The concept must live at the queried cuboid's item level for that
// dimension.
type Selector struct {
	Dim   int
	Value hierarchy.NodeID
}

// Query describes one OLAP operation: the cuboid, the anchor cell, the
// operation, and its options. The zero Op is OpCell, so the minimal query —
// a spec and values — reads exactly like the old QueryGraph call.
type Query struct {
	// Op selects the operation.
	Op Op
	// Spec is the queried cuboid ⟨Il, Pl⟩.
	Spec CuboidSpec
	// Values anchors the operation: the queried cell for OpCell, the cell
	// to generalize for OpRollUp, the cell to refine for OpDrillDown.
	// Unused by OpSlice and OpDice.
	Values []hierarchy.NodeID
	// Dim is the dimension OpRollUp and OpDrillDown move along.
	Dim int
	// Select restricts OpSlice (exactly one entry) and OpDice (one or
	// more).
	Select []Selector
	// MaxCells caps multi-cell results (OpDrillDown, OpSlice, OpDice);
	// 0 means DefaultMaxCells. Answer.Truncated reports a hit cap.
	MaxCells int
	// NoCompute disables query-time reconstruction: only materialized
	// cells (and materialized ancestors) answer, the pre-v2 behavior.
	NoCompute bool
}

// DefaultMaxCells bounds multi-cell answers when Query.MaxCells is 0.
const DefaultMaxCells = 256

// Provenance says how a cell was answered.
type Provenance int

const (
	// Materialized: the requested cell itself was materialized,
	// non-redundant, and answered directly.
	Materialized Provenance = iota
	// AncestorFallback: the requested cell was absent (compressed away or
	// below the iceberg threshold) and the nearest materialized — or
	// reconstructable — item-lattice ancestor answered. Not exact.
	AncestorFallback
	// ComputedFromDescendants: the requested cell's cuboid is not
	// materialized and the cell was reconstructed exactly by folding the
	// listed descendant cells.
	ComputedFromDescendants
)

// String returns the wire name used in /v2/query responses.
func (p Provenance) String() string {
	switch p {
	case Materialized:
		return "materialized"
	case AncestorFallback:
		return "ancestor"
	case ComputedFromDescendants:
		return "computed"
	}
	return fmt.Sprintf("provenance(%d)", int(p))
}

// CellAnswer is one answered cell.
type CellAnswer struct {
	// Spec and Values identify the requested (for OpCell) or enumerated
	// (for multi-cell ops) cell, which Graph measures when Exact.
	Spec   CuboidSpec
	Values []hierarchy.NodeID
	// Provenance says how the cell was answered; Exact reports whether
	// Graph measures the requested cell itself rather than an ancestor.
	Provenance Provenance
	Exact      bool
	// SourceSpec and Source are the cell that answered: the cell itself
	// when Materialized, a reconstruction when computed, an ancestor's
	// cell on fallback.
	SourceSpec CuboidSpec
	Source     *Cell
	// Folded lists the descendant cells folded into a computed answer
	// (also set when an ancestor was itself reconstructed).
	Folded []CellRef
	// Graph is the answering flowgraph.
	Graph *flowgraph.Graph
}

// Answer is the result of one Query.
type Answer struct {
	// Query echoes the request.
	Query Query
	// Cells holds the answered cells: exactly one for OpCell and OpRollUp,
	// zero or more for the multi-cell ops, in ascending cell-key order.
	Cells []CellAnswer
	// Truncated reports that a multi-cell op hit Query.MaxCells.
	Truncated bool
	// Skipped counts enumerated cells no materialized or computable source
	// could answer (multi-cell ops only).
	Skipped int
}

// ErrNotComputable is wrapped by ReconstructCell when no materialized
// descendant cuboid certifiably partitions the requested cell. Test with
// errors.Is.
var ErrNotComputable = errors.New("core: cell not computable from materialized descendants")

// Answer executes one OLAP query against the cube. It is a pure read, safe
// under concurrent readers, and works on eager, partially materialized,
// pruned, and lazily loaded cubes alike; ctx is checked between lattice
// probes, so scatter handlers can abandon an expensive reconstruction.
//
// OpCell and OpRollUp return exactly one cell or an error wrapping
// ErrCellNotFound. The multi-cell ops skip unanswerable cells (counted in
// Answer.Skipped) and never error on an empty result.
func (c *Cube) Answer(ctx context.Context, q Query) (*Answer, error) {
	if err := c.validateQuery(&q); err != nil {
		return nil, err
	}
	out := &Answer{Query: q}
	switch q.Op {
	case OpCell:
		ca, err := c.answerCell(ctx, q.Spec, q.Values, q.NoCompute)
		if err != nil {
			return nil, err
		}
		out.Cells = []CellAnswer{ca}
	case OpRollUp:
		spec, values, err := c.RollUpRef(q.Spec, q.Values, q.Dim)
		if err != nil {
			return nil, err
		}
		ca, err := c.answerCell(ctx, spec, values, q.NoCompute)
		if err != nil {
			return nil, err
		}
		out.Cells = []CellAnswer{ca}
	case OpDrillDown:
		spec, err := c.drillDownSpec(q.Spec, q.Dim)
		if err != nil {
			return nil, err
		}
		candidates, _ := c.EnumerateCellValues(spec)
		keep := candidates[:0]
		for _, v := range candidates {
			if cellKey(c.GeneralizeValues(spec.Item, q.Spec.Item, v)) == cellKey(q.Values) {
				keep = append(keep, v)
			}
		}
		if err := c.answerCells(ctx, out, spec, keep); err != nil {
			return nil, err
		}
	case OpSlice, OpDice:
		candidates, _ := c.EnumerateCellValues(q.Spec)
		keep := candidates[:0]
		for _, v := range candidates {
			match := true
			for _, sel := range q.Select {
				if v[sel.Dim] != sel.Value {
					match = false
					break
				}
			}
			if match {
				keep = append(keep, v)
			}
		}
		if err := c.answerCells(ctx, out, q.Spec, keep); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReconstructCell computes the cell eager Build would have materialized for
// a non-materialized cuboid, by folding the matching cells of the nearest
// materialized descendant cuboid whose counts sum to the cell's census
// count. On success the returned cell carries the exact count, the folded
// flowgraph, and — when the cube marks redundancy — the similarity and
// redundancy marking recomputed against its lattice parents; the CellRefs
// name the folded descendants. Unlike Answer it applies no redundant-cell
// preference, so the materialization planner can digest-compare every
// reconstructed cell against its eager twin.
func (c *Cube) ReconstructCell(ctx context.Context, spec CuboidSpec, values []hierarchy.NodeID) (*Cell, []CellRef, error) {
	return c.reconstructCell(ctx, spec, values, 0)
}

// validateQuery checks structure and defaults MaxCells.
func (c *Cube) validateQuery(q *Query) error {
	dims := len(c.Schema.Dims)
	if len(q.Spec.Item) != dims {
		return fmt.Errorf("core: query: item level has %d dimensions, schema has %d", len(q.Spec.Item), dims)
	}
	// Item levels outside the plan's ladders are allowed, exactly as they
	// were for QueryGraph: such a cuboid has no materialized twin for a
	// census (so reconstruction is refused) and no descendants, and the cell
	// answers from its nearest materialized ancestor or not at all.
	if pl := len(c.Symbols.PathLevels()); q.Spec.PathLevel < 0 || q.Spec.PathLevel >= pl {
		return fmt.Errorf("core: query: path level %d outside plan (have %d)", q.Spec.PathLevel, pl)
	}
	switch q.Op {
	case OpCell, OpRollUp, OpDrillDown:
		if len(q.Values) != dims {
			return fmt.Errorf("core: query: cell has %d values, schema has %d dimensions", len(q.Values), dims)
		}
	}
	switch q.Op {
	case OpRollUp, OpDrillDown:
		if q.Dim < 0 || q.Dim >= dims {
			return fmt.Errorf("core: query: dimension %d outside schema (have %d)", q.Dim, dims)
		}
	case OpSlice:
		if len(q.Select) != 1 {
			return fmt.Errorf("core: query: slice needs exactly one selector, got %d", len(q.Select))
		}
	case OpDice:
		if len(q.Select) == 0 {
			return fmt.Errorf("core: query: dice needs at least one selector")
		}
	}
	for _, sel := range q.Select {
		if sel.Dim < 0 || sel.Dim >= dims {
			return fmt.Errorf("core: query: selector dimension %d outside schema (have %d)", sel.Dim, dims)
		}
	}
	if q.MaxCells <= 0 {
		q.MaxCells = DefaultMaxCells
	}
	return nil
}

// RollUpRef generalizes one cell one materialized level along dim: the
// same values with that dimension lifted to the previous level of its
// materialized ladder (or to '*'). It is pure schema navigation — the
// target need not be materialized — so metadata-only cubes (core.LoadMeta)
// can use it too.
func (c *Cube) RollUpRef(spec CuboidSpec, values []hierarchy.NodeID, dim int) (CuboidSpec, []hierarchy.NodeID, error) {
	if spec.Item[dim] == 0 {
		return CuboidSpec{}, nil, fmt.Errorf("core: query: dimension %s is already aggregated to '*'", c.Schema.Dims[dim].Dimension())
	}
	prev := 0
	for _, ml := range c.Symbols.DimLevels()[dim] {
		if ml >= spec.Item[dim] {
			break
		}
		prev = ml
	}
	pItem := append(ItemLevel(nil), spec.Item...)
	pItem[dim] = prev
	pSpec := CuboidSpec{Item: pItem, PathLevel: spec.PathLevel}
	return pSpec, c.GeneralizeValues(spec.Item, pItem, values), nil
}

// drillDownSpec refines the cuboid one materialized level along dim.
func (c *Cube) drillDownSpec(spec CuboidSpec, dim int) (CuboidSpec, error) {
	ladder := c.Symbols.DimLevels()[dim]
	cur := spec.Item[dim]
	next := -1
	if cur == 0 {
		if len(ladder) > 0 {
			next = ladder[0]
		}
	} else {
		for i, ml := range ladder {
			if ml == cur && i+1 < len(ladder) {
				next = ladder[i+1]
			}
		}
	}
	if next < 0 {
		return CuboidSpec{}, fmt.Errorf("core: query: dimension %s is already at its finest materialized level", c.Schema.Dims[dim].Dimension())
	}
	nItem := append(ItemLevel(nil), spec.Item...)
	nItem[dim] = next
	return CuboidSpec{Item: nItem, PathLevel: spec.PathLevel}, nil
}

// answerCells answers each enumerated cell of one cuboid, skipping misses
// and honoring the cap.
func (c *Cube) answerCells(ctx context.Context, out *Answer, spec CuboidSpec, values [][]hierarchy.NodeID) error {
	for _, v := range values {
		if len(out.Cells) >= out.Query.MaxCells {
			out.Truncated = true
			return nil
		}
		ca, err := c.answerCell(ctx, spec, v, out.Query.NoCompute)
		if err != nil {
			if errors.Is(err, ErrCellNotFound) {
				out.Skipped++
				continue
			}
			return err
		}
		out.Cells = append(out.Cells, ca)
	}
	return nil
}

// answerCell resolves one cell: materialized, else reconstructed (only when
// its whole cuboid is absent — on a materialized cuboid the cell's absence
// means sub-δ or compressed, and the v1 ancestor rule applies unchanged),
// else the nearest materialized-or-reconstructable ancestor breadth-first
// up the item lattice.
func (c *Cube) answerCell(ctx context.Context, spec CuboidSpec, values []hierarchy.NodeID, noCompute bool) (CellAnswer, error) {
	if err := ctx.Err(); err != nil {
		return CellAnswer{}, err
	}
	if cell, found := c.Cell(spec, values); found && cell.Graph != nil && !cell.Redundant {
		return CellAnswer{
			Spec: spec, Values: values,
			Provenance: Materialized, Exact: true,
			SourceSpec: spec, Source: cell, Graph: cell.Graph,
		}, nil
	}
	compute := !noCompute
	if compute && c.Cuboid(spec) == nil {
		cell, folded, err := c.reconstructCell(ctx, spec, values, 0)
		if err != nil && !errors.Is(err, ErrNotComputable) {
			return CellAnswer{}, err
		}
		// A reconstructed-but-redundant cell follows the same inference
		// rule as a materialized one: the parent answers.
		if err == nil && !cell.Redundant {
			return CellAnswer{
				Spec: spec, Values: values,
				Provenance: ComputedFromDescendants, Exact: true,
				SourceSpec: spec, Source: cell, Folded: folded, Graph: cell.Graph,
			}, nil
		}
	}
	frontier := []CellRef{{Spec: spec, Values: values}}
	seen := map[string]bool{spec.Key() + "|" + cellKey(values): true}
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return CellAnswer{}, err
		}
		var next []CellRef
		for _, r := range frontier {
			for _, p := range c.ParentRefs(r.Spec, r.Values) {
				k := p.Spec.Key() + "|" + cellKey(p.Values)
				if seen[k] {
					continue
				}
				seen[k] = true
				if cell, found := c.Cell(p.Spec, p.Values); found && cell.Graph != nil && !cell.Redundant {
					return CellAnswer{
						Spec: spec, Values: values,
						Provenance: AncestorFallback, Exact: false,
						SourceSpec: p.Spec, Source: cell, Graph: cell.Graph,
					}, nil
				}
				if compute && c.Cuboid(p.Spec) == nil {
					cell, folded, err := c.reconstructCell(ctx, p.Spec, p.Values, 0)
					if err != nil && !errors.Is(err, ErrNotComputable) {
						return CellAnswer{}, err
					}
					if err == nil && !cell.Redundant {
						return CellAnswer{
							Spec: spec, Values: values,
							Provenance: AncestorFallback, Exact: false,
							SourceSpec: p.Spec, Source: cell, Folded: folded, Graph: cell.Graph,
						}, nil
					}
				}
				next = append(next, p)
			}
		}
		frontier = next
	}
	return CellAnswer{}, fmt.Errorf("%w: cuboid %s cell %s (no materialized ancestor either)",
		ErrCellNotFound, spec.Key(), cellKey(values))
}

// reconstructCell is ReconstructCell's body. depth > 0 marks a recursive
// parent reconstruction made only for a similarity comparison: such cells
// need their graph, not their own redundancy marking (and the recursion
// stays bounded — parents are strictly coarser).
func (c *Cube) reconstructCell(ctx context.Context, spec CuboidSpec, values []hierarchy.NodeID, depth int) (*Cell, []CellRef, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	census, ok := c.CensusCount(spec, values)
	if !ok {
		return nil, nil, fmt.Errorf("%w: cuboid %s cell %s: no materialized cuboid shares item level %s for the census count",
			ErrNotComputable, spec.Key(), cellKey(values), spec.Item.Key())
	}
	target := cellKey(values)
	for _, ds := range c.DescendantSpecs(spec) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cb := c.Cuboid(ds)
		if cb == nil {
			continue
		}
		var sum int64
		var graphs []*flowgraph.Graph
		var folded []CellRef
		usable := true
		for _, cell := range cb.SortedCells() {
			if cellKey(c.GeneralizeValues(ds.Item, spec.Item, cell.Values)) != target {
				continue
			}
			if cell.Graph == nil {
				usable = false
				break
			}
			sum += cell.Count
			graphs = append(graphs, cell.Graph)
			folded = append(folded, CellRef{Spec: ds, Values: cell.Values})
		}
		// The certificate: the descendant cells generalizing to the target
		// must account for every one of its paths. An iceberg-truncated
		// descendant (sub-δ children pruned) sums short and is refused.
		if !usable || len(graphs) == 0 || sum != census {
			continue
		}
		g, err := flowgraph.Fold(graphs)
		if err != nil {
			continue
		}
		cell := &Cell{
			Values:     append([]hierarchy.NodeID(nil), values...),
			Count:      census,
			Graph:      g,
			Similarity: SimilarityUnknown,
		}
		if depth == 0 && c.Config.Tau > 0 {
			if err := c.reconstructRedundancy(ctx, spec, cell); err != nil {
				return nil, nil, err
			}
		}
		return cell, folded, nil
	}
	return nil, nil, fmt.Errorf("%w: cuboid %s cell %s: no materialized descendant cuboid partitions it",
		ErrNotComputable, spec.Key(), cellKey(values))
}

// reconstructRedundancy mirrors MarkCellRedundancy for a reconstructed
// cell: its similarity is measured against the graphs its item-lattice
// parents have — or, for parents whose cuboids were pruned, would have had
// (reconstructed recursively). Parents that are neither materialized nor
// computable are skipped, exactly as MarkCellRedundancy skips absent
// parents; the planner's digest verification catches any divergence from
// the eager marking this conservatism could cause.
func (c *Cube) reconstructRedundancy(ctx context.Context, spec CuboidSpec, cell *Cell) error {
	compared := 0
	minSim := 1.0
	for _, p := range c.ParentRefs(spec, cell.Values) {
		var pg *flowgraph.Graph
		if pc, ok := c.Cell(p.Spec, p.Values); ok && pc.Graph != nil {
			pg = pc.Graph
		} else if c.Cuboid(p.Spec) == nil {
			pcell, _, err := c.reconstructCell(ctx, p.Spec, p.Values, 1)
			if err != nil {
				if errors.Is(err, ErrNotComputable) {
					continue
				}
				return err
			}
			pg = pcell.Graph
		}
		if pg == nil {
			continue
		}
		compared++
		if sim := flowgraph.Similarity(cell.Graph, pg); sim < minSim {
			minSim = sim
		}
	}
	if compared == 0 {
		cell.Similarity = SimilarityUnknown
		cell.Redundant = false
		return nil
	}
	cell.Similarity = minSim
	cell.Redundant = minSim > c.Config.Tau
	return nil
}
