package core

// Lattice navigation for the OLAP engine: enumerating materialized cuboids,
// locating the materialized descendants a non-materialized cell can be
// folded from, and moving cell values between item levels. Everything here
// is a pure read, lazy-aware, and safe under concurrent readers.

import (
	"sort"

	"flowcube/internal/hierarchy"
)

// MaterializedSpecs returns the spec of every materialized cuboid in
// ascending key order. On a lazy cube this reads the section census without
// decoding any cells.
func (c *Cube) MaterializedSpecs() []CuboidSpec {
	if c.lazy != nil {
		sums := c.CuboidSummaries()
		out := make([]CuboidSpec, len(sums))
		for i, s := range sums {
			out[i] = CuboidSpec{Item: s.Item, PathLevel: s.PathLevel}
		}
		return out
	}
	keys := make([]string, 0, len(c.Cuboids))
	for k := range c.Cuboids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]CuboidSpec, len(keys))
	for i, k := range keys {
		out[i] = c.Cuboids[k].Spec
	}
	return out
}

// levelRank returns the position of item level l within dimension d's
// materialized level ladder ({'*'} ∪ plan levels): 0 for '*', 1 for the
// first materialized level, and so on. Unknown levels rank below '*' so a
// malformed spec never counts as a descendant.
func (c *Cube) levelRank(d, l int) int {
	if l == 0 {
		return 0
	}
	for i, ml := range c.Symbols.DimLevels()[d] {
		if ml == l {
			return i + 1
		}
	}
	return -1
}

// DescendantSpecs returns the materialized cuboids that refine spec: same
// path level, item level strictly dominated by spec's (finer in at least
// one dimension, coarser in none). They are ordered nearest-first — by the
// total ladder distance from spec, ties broken by key — so fold searches
// prefer the cheapest certificate (fewest cells to fold).
func (c *Cube) DescendantSpecs(spec CuboidSpec) []CuboidSpec {
	type cand struct {
		spec CuboidSpec
		dist int
	}
	var cands []cand
	for _, ds := range c.MaterializedSpecs() {
		dist, ok := c.LatticeDist(spec, ds)
		if !ok {
			continue
		}
		cands = append(cands, cand{spec: ds, dist: dist})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].spec.Key() < cands[j].spec.Key()
	})
	out := make([]CuboidSpec, len(cands))
	for i, cd := range cands {
		out[i] = cd.spec
	}
	return out
}

// LatticeDist reports whether ds refines spec — same path level, item level
// strictly dominated (finer in at least one dimension, coarser in none) —
// and the total ladder distance between them: the nearest-first order
// DescendantSpecs folds in. It is pure schema navigation, so metadata-only
// cubes (core.LoadMeta) can rank scattered fold sources with it too.
func (c *Cube) LatticeDist(spec, ds CuboidSpec) (int, bool) {
	if ds.PathLevel != spec.PathLevel {
		return 0, false
	}
	if !spec.Item.Dominates(ds.Item) || ds.Item.Key() == spec.Item.Key() {
		return 0, false
	}
	dist := 0
	for d, l := range ds.Item {
		r, sr := c.levelRank(d, l), c.levelRank(d, spec.Item[d])
		if r < 0 || sr < 0 {
			return 0, false
		}
		dist += r - sr
	}
	return dist, true
}

// GeneralizeValues maps a cell's values at item level from to the coarser
// item level to (which must dominate from). Dimensions aggregated to '*'
// become hierarchy.Root; others climb the hierarchy with AncestorAt.
func (c *Cube) GeneralizeValues(from, to ItemLevel, values []hierarchy.NodeID) []hierarchy.NodeID {
	out := make([]hierarchy.NodeID, len(values))
	for d, v := range values {
		switch {
		case to[d] == 0:
			out[d] = hierarchy.Root
		case to[d] == from[d]:
			out[d] = v
		default:
			out[d] = c.Schema.Dims[d].AncestorAt(v, to[d])
		}
	}
	return out
}

// CensusCount looks up the exact path count of a cell from any materialized
// cuboid sharing the item level (counts are independent of path level: a
// cell's count is the size of its path set, however the paths are
// aggregated). It is the certificate anchor for computed cells: a fold of
// descendants is exact iff the folded counts sum to the census count.
func (c *Cube) CensusCount(spec CuboidSpec, values []hierarchy.NodeID) (int64, bool) {
	ilKey := spec.Item.Key()
	for _, ms := range c.MaterializedSpecs() {
		if ms.Item.Key() != ilKey || ms.Key() == spec.Key() {
			continue
		}
		if cell, ok := c.Cell(ms, values); ok {
			return cell.Count, true
		}
	}
	return 0, false
}

// EnumerateCellValues lists the value tuples of spec's cells whether or not
// the cuboid is materialized, in ascending cell-key order. For a dropped
// cuboid the tuples come from a materialized cuboid at the same item level
// (the census twin — cell sets at one item level agree across path levels
// of an uncompressed cube), falling back to the distinct generalizations of
// every materialized descendant's cells. The bool reports whether any
// source was found.
func (c *Cube) EnumerateCellValues(spec CuboidSpec) ([][]hierarchy.NodeID, bool) {
	if cb := c.Cuboid(spec); cb != nil {
		cells := cb.SortedCells()
		out := make([][]hierarchy.NodeID, len(cells))
		for i, cell := range cells {
			out[i] = cell.Values
		}
		return out, true
	}
	ilKey := spec.Item.Key()
	for _, ms := range c.MaterializedSpecs() {
		if ms.Item.Key() != ilKey || ms.Key() == spec.Key() {
			continue
		}
		return c.EnumerateCellValues(ms)
	}
	seen := map[string][]hierarchy.NodeID{}
	found := false
	for _, ds := range c.DescendantSpecs(spec) {
		cb := c.Cuboid(ds)
		if cb == nil {
			continue
		}
		found = true
		for _, cell := range cb.Cells {
			up := c.GeneralizeValues(ds.Item, spec.Item, cell.Values)
			seen[cellKey(up)] = up
		}
	}
	if !found {
		return nil, false
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]hierarchy.NodeID, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, true
}
