package core

import (
	"errors"
	"fmt"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
)

// Typed configuration errors: Build rejects an invalid Config with a
// *ConfigError naming the offending field, so callers can branch on the
// failure (errors.As) instead of string-matching ad-hoc messages.

// ConfigError reports one invalid Config field.
type ConfigError struct {
	// Field is the Config field name, e.g. "MinSupport".
	Field string
	// Reason describes the violated constraint.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration for structural validity: an iceberg
// threshold must be set (fractional MinSupport in (0,1] or an absolute
// MinCount ≥ 1), deviation and similarity thresholds must be non-negative,
// the plan must contain at least one path level, and worker counts cannot
// be negative. It returns the first violation as a *ConfigError; Build
// calls it before touching the database.
func (cfg Config) Validate() error {
	if cfg.MinCount < 0 {
		return &ConfigError{Field: "MinCount", Reason: fmt.Sprintf("must be non-negative, got %d", cfg.MinCount)}
	}
	if cfg.MinCount == 0 && cfg.MiningOptions == nil {
		if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
			return &ConfigError{Field: "MinSupport",
				Reason: fmt.Sprintf("must be in (0,1] when MinCount is unset, got %g", cfg.MinSupport)}
		}
	}
	if cfg.Epsilon < 0 {
		return &ConfigError{Field: "Epsilon", Reason: fmt.Sprintf("must be non-negative, got %g", cfg.Epsilon)}
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return &ConfigError{Field: "Tau", Reason: fmt.Sprintf("must be in [0,1], got %g", cfg.Tau)}
	}
	if len(cfg.Plan.PathLevels) == 0 {
		return &ConfigError{Field: "Plan", Reason: "must contain at least one path abstraction level"}
	}
	if cfg.Workers < 0 {
		return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("must be non-negative, got %d", cfg.Workers)}
	}
	return nil
}

// ErrCellNotFound is the sentinel wrapped by ResolveGraph when no
// materialized cell — not even an item-lattice ancestor — answers a query.
// Test with errors.Is.
var ErrCellNotFound = errors.New("core: cell not found")

// ResolveGraph is QueryGraph with an error return: on a miss it wraps
// ErrCellNotFound with the requested cell's identity, so callers layered on
// errors (HTTP handlers, CLIs) need no boolean plumbing. errors.Is
// recognizes the sentinel through the wrap.
func (c *Cube) ResolveGraph(spec CuboidSpec, values []hierarchy.NodeID) (*flowgraph.Graph, *Cell, bool, error) {
	g, source, exact, ok := c.QueryGraph(spec, values)
	if !ok {
		return nil, nil, false, fmt.Errorf("%w: cuboid %s cell %s (no materialized ancestor either)",
			ErrCellNotFound, spec.Key(), cellKey(values))
	}
	return g, source, exact, nil
}
