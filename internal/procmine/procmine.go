// Package procmine implements workflow induction over paths — the process
// mining line (Agrawal, Gunopulos & Leymann 1998; van der Aalst & Weijters
// 2004) that the paper's related work §7 identifies as the closest prior
// approach to flowgraph construction.
//
// A workflow net here is a directed graph over locations: one node per
// location (not per path prefix, unlike the flowgraph), edges weighted by
// observed transition frequencies, plus start/termination frequencies per
// node. The model is far smaller than a flowgraph but conflates contexts:
// every visit to a location shares one outgoing distribution regardless of
// how the item got there — exactly the limitation ("does not take activity
// duration into account", no duplicate activities, no exceptions) the
// paper's flowgraph addresses. The package exists to reproduce that
// comparison; see the tests contrasting model sizes and predictive
// behaviour.
package procmine

import (
	"fmt"
	"sort"
	"strings"

	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
	"flowcube/internal/stats"
)

// Net is an induced workflow net.
type Net struct {
	loc *hierarchy.Hierarchy
	// starts counts paths beginning at each location.
	starts *stats.Multinomial
	// nodes maps a location to its activity statistics.
	nodes map[hierarchy.NodeID]*Activity
	paths int64
}

// Activity is one workflow node: a location with its observed behaviour.
type Activity struct {
	Location hierarchy.NodeID
	// Visits counts stage occurrences (a path may visit more than once).
	Visits int64
	// Durations aggregates every stay at the location.
	Durations *stats.Multinomial
	// Out is the transition distribution to successor locations, with
	// Terminate for path ends.
	Out *stats.Multinomial
}

// Terminate is the outcome standing for "the path ends here".
const Terminate = int64(-1)

// Induce builds the workflow net of a path collection.
func Induce(loc *hierarchy.Hierarchy, paths []pathdb.Path) *Net {
	n := &Net{
		loc:    loc,
		starts: stats.NewMultinomial(),
		nodes:  make(map[hierarchy.NodeID]*Activity),
	}
	for _, p := range paths {
		if len(p) == 0 {
			continue
		}
		n.paths++
		n.starts.Observe(int64(p[0].Location))
		for i, st := range p {
			a := n.activity(st.Location)
			a.Visits++
			a.Durations.Observe(st.Duration)
			if i+1 < len(p) {
				a.Out.Observe(int64(p[i+1].Location))
			} else {
				a.Out.Observe(Terminate)
			}
		}
	}
	return n
}

func (n *Net) activity(l hierarchy.NodeID) *Activity {
	a := n.nodes[l]
	if a == nil {
		a = &Activity{
			Location:  l,
			Durations: stats.NewMultinomial(),
			Out:       stats.NewMultinomial(),
		}
		n.nodes[l] = a
	}
	return a
}

// Paths reports the number of paths summarized.
func (n *Net) Paths() int64 { return n.paths }

// NumActivities reports the number of distinct locations — the model size,
// to contrast with a flowgraph's node count (one per distinct prefix).
func (n *Net) NumActivities() int { return len(n.nodes) }

// Activity returns the statistics for a location, or nil.
func (n *Net) Activity(l hierarchy.NodeID) *Activity { return n.nodes[l] }

// Activities returns all activities ordered by location id.
func (n *Net) Activities() []*Activity {
	out := make([]*Activity, 0, len(n.nodes))
	for _, a := range n.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Location < out[j].Location })
	return out
}

// PathProb is the first-order Markov probability the net assigns to a
// path: start probability times per-location transition probabilities
// (durations marginalized — the induced net, like the process-mining
// models it reproduces, has no joint duration model).
func (n *Net) PathProb(p pathdb.Path) float64 {
	if len(p) == 0 || n.paths == 0 {
		return 0
	}
	prob := n.starts.Prob(int64(p[0].Location))
	for i := 0; i < len(p) && prob > 0; i++ {
		a := n.nodes[p[i].Location]
		if a == nil {
			return 0
		}
		next := Terminate
		if i+1 < len(p) {
			next = int64(p[i+1].Location)
		}
		prob *= a.Out.Prob(next)
	}
	return prob
}

// String renders one line per activity.
func (n *Net) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow net (%d paths, %d activities)\n", n.paths, len(n.nodes))
	for _, a := range n.Activities() {
		fmt.Fprintf(&b, "  %s visits=%d dur[%s] out[", n.loc.Name(a.Location), a.Visits, a.Durations)
		for i, v := range a.Out.Outcomes() {
			if i > 0 {
				b.WriteByte(' ')
			}
			name := "end"
			if v != Terminate {
				name = n.loc.Name(hierarchy.NodeID(v))
			}
			fmt.Fprintf(&b, "%s:%.2f", name, a.Out.Prob(v))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
