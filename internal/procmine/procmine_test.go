package procmine_test

import (
	"math"
	"strings"
	"testing"

	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/procmine"
)

func basePaths(ex *paperex.Example) []pathdb.Path {
	out := make([]pathdb.Path, 0, ex.DB.Len())
	for _, r := range ex.DB.Records {
		out = append(out, r.Path)
	}
	return out
}

func TestInduceRunningExample(t *testing.T) {
	ex := paperex.New()
	net := procmine.Induce(ex.Location, basePaths(ex))
	if net.Paths() != 8 {
		t.Fatalf("paths = %d", net.Paths())
	}
	// Six distinct locations appear in Table 1: f, d, t, s, c, w.
	if net.NumActivities() != 6 {
		t.Fatalf("activities = %d, want 6", net.NumActivities())
	}
	f := net.Activity(ex.Location.MustLookup("f"))
	if f == nil || f.Visits != 8 {
		t.Fatalf("factory activity wrong: %+v", f)
	}
	// From the factory: 5 paths to d, 3 to t.
	if got := f.Out.Prob(int64(ex.Location.MustLookup("d"))); math.Abs(got-5.0/8) > 1e-9 {
		t.Errorf("f→d = %g", got)
	}
	// The distribution center is visited 6 times across 5 paths (path 8
	// returns to it): the workflow net counts visits, not paths.
	d := net.Activity(ex.Location.MustLookup("d"))
	if d.Visits != 6 {
		t.Errorf("d visits = %d, want 6", d.Visits)
	}
	if net.Activity(hierarchy.NodeID(999)) != nil {
		t.Errorf("unknown location returned an activity")
	}
}

// TestContextConflation demonstrates the §7 point: the net shares one
// outgoing distribution per location, so the truck's behaviour after
// f→d→t and after f→t is conflated — while the flowgraph keeps the two
// contexts apart.
func TestContextConflation(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	net := procmine.Induce(ex.Location, paths)
	g := flowgraph.Build(ex.Location, ex.BasePathLevel(), paths, nil)

	loc := func(n string) hierarchy.NodeID { return ex.Location.MustLookup(n) }
	w := int64(loc("w"))
	// Net: the truck is visited 8 times (every path), moving to the
	// warehouse once — a pooled P(w|t) of 1/8 regardless of context.
	if got := net.Activity(loc("t")).Out.Prob(w); math.Abs(got-1.0/8) > 1e-9 {
		t.Fatalf("net P(w|t) = %g, want 1/8", got)
	}
	// Flowgraph: 1/3 in the f→t context, 0 in the f→d→t context.
	ft := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("t")})
	fdt := g.NodeAt([]hierarchy.NodeID{loc("f"), loc("d"), loc("t")})
	if got := ft.Transitions.Prob(w); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("flowgraph P(w|f,t) = %g, want 1/3", got)
	}
	if got := fdt.Transitions.Prob(w); got != 0 {
		t.Fatalf("flowgraph P(w|f,d,t) = %g, want 0", got)
	}
	// And the net is the smaller model: activities <= flowgraph nodes.
	if net.NumActivities() >= len(g.Nodes()) {
		t.Errorf("net (%d activities) not smaller than flowgraph (%d nodes)",
			net.NumActivities(), len(g.Nodes()))
	}
}

func TestPathProb(t *testing.T) {
	ex := paperex.New()
	paths := basePaths(ex)
	net := procmine.Induce(ex.Location, paths)
	// Every observed path gets positive probability; all-path mass over
	// the (infinite) string space need not sum to 1, but each factor is a
	// probability so the product is in (0,1].
	for i, p := range paths {
		pr := net.PathProb(p)
		if pr <= 0 || pr > 1 {
			t.Fatalf("path %d probability %g", i, pr)
		}
	}
	// A path through an unseen location gets 0.
	loc := ex.Location.MustLookup("b") // backroom never occurs in Table 1
	if net.PathProb(pathdb.Path{{Location: loc, Duration: 1}}) != 0 {
		t.Errorf("unseen location got positive probability")
	}
	if net.PathProb(nil) != 0 {
		t.Errorf("empty path got positive probability")
	}
}

func TestStringRendering(t *testing.T) {
	ex := paperex.New()
	net := procmine.Induce(ex.Location, basePaths(ex))
	s := net.String()
	for _, want := range []string{"workflow net (8 paths", "visits=", "end:"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
