package olap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"

	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// testDataset is a small synthetic database: 2 dimensions with shallow
// fanouts so the full lattice (16 item levels × 2 path levels) builds in
// well under a second.
func testDataset(t testing.TB) *datagen.Dataset {
	t.Helper()
	cfg := datagen.Default()
	cfg.NumPaths = 1500
	cfg.NumDims = 2
	cfg.DimFanouts = [3]int{2, 2, 3}
	cfg.NumSequences = 8
	cfg.SeqLenMin, cfg.SeqLenMax = 3, 5
	return datagen.MustGenerate(cfg)
}

func buildEager(t testing.TB, ds *datagen.Dataset, minCount int64, tau float64) *core.Cube {
	t.Helper()
	plan := ds.DefaultPlan()
	plan.PathLevels = plan.PathLevels[:2]
	cube, err := core.Build(ds.DB, core.Config{
		MinCount: minCount,
		Tau:      tau,
		Plan:     plan,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// digestAll records the eager digest of every materialized cell.
func digestAll(cube *core.Cube) map[string][32]byte {
	out := map[string][32]byte{}
	for _, spec := range cube.MaterializedSpecs() {
		cb := cube.Cuboid(spec)
		for _, cell := range cb.SortedCells() {
			out[spec.Key()+"|"+core.FormatCell(cube.Schema, cell.Values)] = core.CellDigest(cell)
		}
	}
	return out
}

// checkComputedCells answers every cell of every dropped cuboid on the
// pruned cube across workers goroutines (the -race exactness proof) and
// requires each answer to be computed, exact, and digest-identical to the
// eager build. It returns how many computed answers were verified.
func checkComputedCells(t *testing.T, eager, pruned *core.Cube, dropped []core.CuboidSpec, digests map[string][32]byte, requireComputed bool) int64 {
	t.Helper()
	type job struct {
		spec core.CuboidSpec
		cell *core.Cell
	}
	var jobs []job
	for _, spec := range dropped {
		cb := eager.Cuboid(spec)
		if cb == nil {
			t.Fatalf("dropped cuboid %s not in eager cube", spec.Key())
		}
		for _, cell := range cb.SortedCells() {
			jobs = append(jobs, job{spec, cell})
		}
	}
	var computed atomic.Int64
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += workers {
				j := jobs[i]
				name := j.spec.Key() + "|" + core.FormatCell(eager.Schema, j.cell.Values)
				a, err := pruned.Answer(context.Background(), core.Query{
					Op: core.OpCell, Spec: j.spec, Values: j.cell.Values,
				})
				if err != nil {
					if errors.Is(err, core.ErrCellNotFound) {
						continue
					}
					t.Errorf("%s: %v", name, err)
					continue
				}
				ca := a.Cells[0]
				if ca.Provenance != core.ComputedFromDescendants {
					// A redundant cell answers via its parent whether it is
					// materialized or reconstructed — same inference rule —
					// so only non-redundant cells must come back computed.
					if requireComputed && !j.cell.Redundant {
						t.Errorf("%s: provenance %s, want computed", name, ca.Provenance)
					}
					continue
				}
				if !ca.Exact {
					t.Errorf("%s: computed answer not marked exact", name)
				}
				if len(ca.Folded) == 0 {
					t.Errorf("%s: computed answer lists no folded cells", name)
				}
				if got, want := core.CellDigest(ca.Source), digests[name]; got != want {
					t.Errorf("%s: computed cell digest diverges from eager build", name)
				}
				computed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return computed.Load()
}

func droppedSpecs(t *testing.T, res *PlanResult) []core.CuboidSpec {
	t.Helper()
	out := make([]core.CuboidSpec, len(res.Dropped))
	for i, d := range res.Dropped {
		spec, err := core.ParseCuboidKey(d.Cuboid)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = spec
	}
	return out
}

// TestPruneDropsAndStaysExact: with MinCount 1 nothing is iceberg-pruned,
// so every coarse cuboid partitions exactly and the planner must find
// drops; every dropped cell must then answer computed-exact with the eager
// digest. This is the acceptance proof for the planner-droppable set.
func TestPruneDropsAndStaysExact(t *testing.T) {
	ds := testDataset(t)
	eager := buildEager(t, ds, 1, 0)
	digests := digestAll(eager)

	pruned := eager.Clone()
	res, err := Prune(context.Background(), pruned, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) == 0 {
		t.Fatal("planner dropped nothing on a MinCount-1 full lattice")
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Fatalf("bytes did not shrink: %d -> %d", res.BytesBefore, res.BytesAfter)
	}
	if res.CuboidsAfter != res.CuboidsBefore-len(res.Dropped) {
		t.Fatalf("cuboid census: before %d, after %d, dropped %d", res.CuboidsBefore, res.CuboidsAfter, len(res.Dropped))
	}
	n := checkComputedCells(t, eager, pruned, droppedSpecs(t, res), digests, true)
	if n == 0 {
		t.Fatal("no computed cells verified")
	}
	t.Logf("dropped %d/%d cuboids, %d -> %d bytes, %d computed cells verified",
		len(res.Dropped), res.CuboidsBefore, res.BytesBefore, res.BytesAfter, n)
}

// TestPruneRedundancyMarking repeats the exactness proof on a cube with
// redundancy marking enabled: reconstructed cells must reproduce the eager
// Similarity/Redundant bits (digest-covered), including against parents
// whose own cuboids were pruned.
func TestPruneRedundancyMarking(t *testing.T) {
	ds := testDataset(t)
	eager := buildEager(t, ds, 1, 0.5)
	digests := digestAll(eager)

	pruned := eager.Clone()
	res, err := Prune(context.Background(), pruned, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) == 0 {
		t.Skip("planner found nothing droppable under redundancy marking")
	}
	checkComputedCells(t, eager, pruned, droppedSpecs(t, res), digests, true)

	// The planner-level proof for every cell, redundant ones included:
	// ReconstructCell (no redundant-cell serving preference) must reproduce
	// the eager bytes, similarity and redundancy marking included.
	for _, spec := range droppedSpecs(t, res) {
		for _, cell := range eager.Cuboid(spec).SortedCells() {
			rec, _, err := pruned.ReconstructCell(context.Background(), spec, cell.Values)
			if err != nil {
				t.Fatalf("%s cell %s: %v", spec.Key(), core.FormatCell(eager.Schema, cell.Values), err)
			}
			if core.CellDigest(rec) != core.CellDigest(cell) {
				t.Errorf("%s cell %s: reconstructed digest diverges from eager build",
					spec.Key(), core.FormatCell(eager.Schema, cell.Values))
			}
		}
	}
}

// TestPruneBudget: a tight cost budget must bound every drop's fold width
// and can only keep the snapshot larger than the unlimited plan.
func TestPruneBudget(t *testing.T) {
	ds := testDataset(t)
	eager := buildEager(t, ds, 1, 0)

	unlimited, err := Prune(context.Background(), eager.Clone(), PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	budget := 2
	tight, err := Prune(context.Background(), eager.Clone(), PlannerConfig{CostBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tight.Dropped {
		if d.MaxFold > budget {
			t.Errorf("cuboid %s dropped with max fold %d over budget %d", d.Cuboid, d.MaxFold, budget)
		}
	}
	if tight.BytesAfter < unlimited.BytesAfter {
		t.Errorf("tight budget snapshot (%d bytes) smaller than unlimited (%d bytes)",
			tight.BytesAfter, unlimited.BytesAfter)
	}
}

// TestPruneKeepsExceptionCuboids: exception-bearing cells cannot be
// refolded (holistic measure), so the planner must keep their cuboids.
func TestPruneKeepsExceptionCuboids(t *testing.T) {
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel(), ex.TransportPathLevel()}}
	cube, err := core.Build(ex.DB, core.Config{
		MinCount:              2,
		Epsilon:               0.1,
		Plan:                  plan,
		MineExceptions:        true,
		SingleStageExceptions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eager := cube.Clone()
	res, err := Prune(context.Background(), cube, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range droppedSpecs(t, res) {
		for _, cell := range eager.Cuboid(spec).SortedCells() {
			if cell.Graph != nil && len(cell.Graph.Exceptions()) > 0 {
				t.Errorf("cuboid %s dropped although cell %s carries exceptions",
					spec.Key(), core.FormatCell(eager.Schema, cell.Values))
			}
		}
	}
}

// TestAnswerMatchesEagerRandomSplits is the K-split-point property test:
// drop a random subset of cuboids, then every cell the engine answers as
// computed must digest-identical to the eager build. Splits run in
// parallel, and each split fans its cells over goroutines, so `go test
// -race` checks Answer's concurrent-reader contract at the same time.
func TestAnswerMatchesEagerRandomSplits(t *testing.T) {
	ds := testDataset(t)
	eager := buildEager(t, ds, 2, 0)
	digests := digestAll(eager)
	specs := eager.MaterializedSpecs()

	var computed atomic.Int64
	const splits = 6
	t.Run("splits", func(t *testing.T) {
		for k := 0; k < splits; k++ {
			k := k
			t.Run(fmt.Sprintf("seed%d", k), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(k)))
				pruned := eager.Clone()
				var dropped []core.CuboidSpec
				for _, s := range specs {
					if rng.Intn(2) == 0 {
						if cb := pruned.DropCuboid(s); cb != nil {
							dropped = append(dropped, s)
						}
					}
				}
				computed.Add(checkComputedCells(t, eager, pruned, dropped, digests, false))
			})
		}
	})
	if computed.Load() == 0 {
		t.Fatal("no split produced a single computed cell; the property test proved nothing")
	}
	t.Logf("%d computed cells verified across %d random splits", computed.Load(), splits)
}

// buildPaperCube is the Figure-5 running example without exceptions, the
// fixture for operation-semantics tests.
func buildPaperCube(t testing.TB) (*paperex.Example, *core.Cube) {
	t.Helper()
	ex := paperex.New()
	plan := transact.Plan{PathLevels: []pathdb.PathLevel{ex.BasePathLevel(), ex.TransportPathLevel()}}
	cube, err := core.Build(ex.DB, core.Config{MinCount: 2, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	return ex, cube
}

func parseCell(t testing.TB, cube *core.Cube, cell string, pathLevel int) core.Query {
	t.Helper()
	q, err := ParseQuery(cube, url.Values{"cell": {cell}, "pathlevel": {fmt.Sprint(pathLevel)}})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestAnswerOps(t *testing.T) {
	_, cube := buildPaperCube(t)
	ctx := context.Background()
	product := cube.Schema.DimIndex("product")
	brand := cube.Schema.DimIndex("brand")

	t.Run("rollup", func(t *testing.T) {
		q := parseCell(t, cube, "product=shoes,brand=nike", 0)
		q.Op = core.OpRollUp
		q.Dim = product
		a, err := cube.Answer(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		ca := a.Cells[0]
		if got := core.FormatCell(cube.Schema, ca.Values); got != "product=clothing,brand=nike" {
			t.Errorf("rollup answered %s", got)
		}
		if ca.Spec.Item[product] != 1 {
			t.Errorf("rollup item level %v", ca.Spec.Item)
		}
	})

	t.Run("rollup-at-apex-errors", func(t *testing.T) {
		q := parseCell(t, cube, "", 0)
		q.Op = core.OpRollUp
		q.Dim = product
		if _, err := cube.Answer(ctx, q); err == nil {
			t.Fatal("rolling up an aggregated dimension did not error")
		}
	})

	t.Run("drilldown", func(t *testing.T) {
		q := parseCell(t, cube, "product=shoes,brand=nike", 0)
		q.Op = core.OpDrillDown
		q.Dim = product
		a, err := cube.Answer(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, ca := range a.Cells {
			if ca.Spec.Item[product] != 3 {
				t.Errorf("drilldown cell %s at item level %v", core.FormatCell(cube.Schema, ca.Values), ca.Spec.Item)
			}
		}
		if len(a.Cells) == 0 && a.Skipped == 0 {
			t.Error("drilldown found no child cells at all")
		}
	})

	t.Run("slice", func(t *testing.T) {
		q, err := ParseQuery(cube, url.Values{"op": {"slice"}, "cell": {"product=shoes"}, "select": {"brand=nike"}})
		if err != nil {
			t.Fatal(err)
		}
		a, err := cube.Answer(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Cells) == 0 {
			t.Fatal("slice returned no cells")
		}
		for _, ca := range a.Cells {
			if got := cube.Schema.Dims[brand].Name(ca.Values[brand]); got != "nike" {
				t.Errorf("slice leaked cell with brand=%s", got)
			}
		}
	})

	t.Run("dice-max", func(t *testing.T) {
		q, err := ParseQuery(cube, url.Values{"op": {"dice"}, "select": {"brand=nike"}, "max": {"1"}})
		if err != nil {
			t.Fatal(err)
		}
		a, err := cube.Answer(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Cells) > 1 {
			t.Errorf("max=1 returned %d cells", len(a.Cells))
		}
	})

	t.Run("nocompute", func(t *testing.T) {
		pruned := cube.Clone()
		res, err := Prune(ctx, pruned, PlannerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range droppedSpecs(t, res) {
			for _, cell := range cube.Cuboid(spec).SortedCells() {
				a, err := pruned.Answer(ctx, core.Query{Spec: spec, Values: cell.Values, NoCompute: true})
				if err != nil {
					continue
				}
				if a.Cells[0].Provenance == core.ComputedFromDescendants {
					t.Fatalf("NoCompute still computed %s", core.FormatCell(cube.Schema, cell.Values))
				}
			}
		}
	})
}

func TestParseQueryErrors(t *testing.T) {
	_, cube := buildPaperCube(t)
	bad := []url.Values{
		{"op": {"pivot"}},
		{"cell": {"bogus"}},
		{"cell": {"product=bogus"}},
		{"pathlevel": {"x"}},
		{"op": {"rollup"}},
		{"op": {"rollup"}, "dim": {"nosuch"}},
		{"op": {"slice"}, "select": {"brand"}},
		{"op": {"slice"}, "select": {"brand=bogus"}},
		{"op": {"slice"}, "cell": {"brand=sports"}, "select": {"brand=nike"}},
		{"max": {"0"}},
		{"nocompute": {"maybe"}},
	}
	for _, params := range bad {
		if _, err := ParseQuery(cube, params); err == nil {
			t.Errorf("ParseQuery(%v) did not error", params)
		}
	}

	q, err := ParseQuery(cube, url.Values{"op": {"slice"}, "select": {"brand=nike"}})
	if err != nil {
		t.Fatal(err)
	}
	brand := cube.Schema.DimIndex("brand")
	if q.Spec.Item[brand] != 2 {
		t.Errorf("selector did not imply brand level: %v", q.Spec.Item)
	}
}
