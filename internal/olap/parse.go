package olap

// Parsing the /v2/query wire surface into core.Query values. The textual
// conventions are the v1 ones — cells as "dim=concept" pairs against the
// schema (core.ParseCellSpec) — extended with the operation, its axis or
// selectors, and the result-shaping options.

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"flowcube/internal/core"
)

// ParseQuery parses /v2/query URL parameters against the cube's schema:
//
//	op        cell (default) | rollup | drilldown | slice | dice
//	cell      "dim=concept,..." — the anchor cell; implies the cuboid's
//	          item level. Empty addresses the apex.
//	pathlevel path abstraction level index (default 0)
//	dim       dimension name rollup/drilldown moves along
//	select    "dim=concept,..." — slice/dice selectors; each names the
//	          sliced value and, for dimensions the cell leaves aggregated,
//	          implies the cuboid's level there
//	max       multi-cell result cap (default core.DefaultMaxCells)
//	nocompute "1"/"true" disables query-time reconstruction
//
// Structural validation beyond parsing (level existence, selector counts)
// is Cube.Answer's job; ParseQuery only rejects what cannot name anything.
func ParseQuery(cube *core.Cube, params url.Values) (core.Query, error) {
	var q core.Query
	switch op := params.Get("op"); op {
	case "", "cell":
		q.Op = core.OpCell
	case "rollup":
		q.Op = core.OpRollUp
	case "drilldown":
		q.Op = core.OpDrillDown
	case "slice":
		q.Op = core.OpSlice
	case "dice":
		q.Op = core.OpDice
	default:
		return core.Query{}, fmt.Errorf("unknown op %q, want cell|rollup|drilldown|slice|dice", op)
	}

	il, values, err := core.ParseCellSpec(cube.Schema, params.Get("cell"))
	if err != nil {
		return core.Query{}, fmt.Errorf("bad cell: %v", err)
	}
	q.Spec = core.CuboidSpec{Item: il}
	q.Values = values

	if pl := params.Get("pathlevel"); pl != "" {
		n, err := strconv.Atoi(pl)
		if err != nil || n < 0 {
			return core.Query{}, fmt.Errorf("bad pathlevel %q", pl)
		}
		q.Spec.PathLevel = n
	}

	switch q.Op {
	case core.OpRollUp, core.OpDrillDown:
		name := params.Get("dim")
		if name == "" {
			return core.Query{}, fmt.Errorf("op %s needs a dim parameter", q.Op)
		}
		d := cube.Schema.DimIndex(name)
		if d < 0 {
			return core.Query{}, fmt.Errorf("unknown dimension %q", name)
		}
		q.Dim = d
	}

	if sel := params.Get("select"); sel != "" {
		for _, pair := range strings.Split(sel, ",") {
			name, concept, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return core.Query{}, fmt.Errorf("bad selector %q, want dim=concept", pair)
			}
			d := cube.Schema.DimIndex(name)
			if d < 0 {
				return core.Query{}, fmt.Errorf("unknown dimension %q in selector", name)
			}
			id, found := cube.Schema.Dims[d].Lookup(concept)
			if !found {
				return core.Query{}, fmt.Errorf("unknown concept %q in dimension %q", concept, name)
			}
			level := cube.Schema.Dims[d].Level(id)
			switch q.Spec.Item[d] {
			case 0:
				// The cell left this dimension aggregated: the selector
				// implies the cuboid's level there.
				q.Spec.Item[d] = level
			case level:
			default:
				return core.Query{}, fmt.Errorf("selector %s=%s sits at level %d but the cell pins dimension %s at level %d",
					name, concept, level, name, q.Spec.Item[d])
			}
			q.Select = append(q.Select, core.Selector{Dim: d, Value: id})
		}
	}

	if m := params.Get("max"); m != "" {
		n, err := strconv.Atoi(m)
		if err != nil || n < 1 {
			return core.Query{}, fmt.Errorf("bad max %q", m)
		}
		q.MaxCells = n
	}
	switch params.Get("nocompute") {
	case "", "0", "false":
	case "1", "true":
		q.NoCompute = true
	default:
		return core.Query{}, fmt.Errorf("bad nocompute %q", params.Get("nocompute"))
	}
	return q, nil
}
