// Package olap is the query-time algebra layer over partially materialized
// flowcubes (DESIGN.md §12): it parses the redesigned /v2 query surface
// into core.Query values, and hosts the cost-based materialization planner
// that decides which cuboids a snapshot actually needs.
//
// The planner inverts the usual materialization question. Instead of asking
// which cuboids to precompute, Prune starts from a fully materialized cube
// and drops every cuboid whose cells are exactly reconstructable at query
// time — certified per cell by a byte-identical snapshot digest against the
// eager original — as long as the reconstruction stays within a query-cost
// budget (the number of descendant cells folded per answer). Snapshot size
// and query latency trade off explicitly: a tight budget keeps more cuboids
// materialized, a loose one ships smaller snapshots and folds more at read
// time.
package olap

import (
	"context"
	"fmt"
	"sort"

	"flowcube/internal/core"
)

// PlannerConfig parameterizes Prune.
type PlannerConfig struct {
	// CostBudget caps the query cost of any computed cell: the number of
	// descendant cells folded to answer it. A cuboid with any cell whose
	// reconstruction folds more stays materialized. 0 or negative means
	// unlimited.
	CostBudget int
}

// Drop records one pruned cuboid.
type Drop struct {
	// Cuboid is the pruned cuboid's key.
	Cuboid string `json:"cuboid"`
	// Cells is how many materialized cells it held.
	Cells int `json:"cells"`
	// Bytes is the encoded size of its snapshot section.
	Bytes int `json:"bytes"`
	// MaxFold is the widest fold any of its cells needs at query time —
	// the query cost the budget bounds.
	MaxFold int `json:"max_fold"`
}

// PlanResult summarizes one Prune run.
type PlanResult struct {
	// Dropped lists the pruned cuboids, largest first.
	Dropped []Drop `json:"dropped"`
	// BytesBefore/After sum the encoded cuboid section sizes.
	BytesBefore int `json:"bytes_before"`
	BytesAfter  int `json:"bytes_after"`
	// CuboidsBefore/After and CellsBefore/After census the cube.
	CuboidsBefore int `json:"cuboids_before"`
	CuboidsAfter  int `json:"cuboids_after"`
	CellsBefore   int `json:"cells_before"`
	CellsAfter    int `json:"cells_after"`
}

// Prune drops every cuboid of the cube that the query engine can recompute
// exactly within the cost budget, mutating the cube in place and returning
// what was dropped. Candidates are tried largest-first (by encoded section
// size — the bytes a drop saves). A drop survives only if every cell of the
// cuboid reconstructs byte-identically (core.CellDigest over the v2
// snapshot encoding, so counts, redundancy marking, similarity bits, and
// the full flowgraph must all match) from the cuboids still materialized;
// since a later drop can invalidate an earlier certificate — the census
// twin or the fold source may itself be pruned — the greedy pass is
// followed by a re-verification fixpoint that restores any cuboid whose
// certificate no longer holds.
//
// Cells whose flowgraphs carry exceptions never verify: exceptions are
// holistic (paper Lemma 4.3) and cannot be refolded, the digest covers
// them, and the planner therefore refuses the cuboid. Like every mutator,
// Prune must not run on a lazily loaded cube or concurrently with readers;
// servers prune a private cube before publishing the snapshot.
func Prune(ctx context.Context, cube *core.Cube, cfg PlannerConfig) (*PlanResult, error) {
	if _, lazy := cube.LazyStats(); lazy {
		return nil, fmt.Errorf("olap: prune needs a materialized cube; Materialize first")
	}
	specs := cube.MaterializedSpecs()
	res := &PlanResult{
		CuboidsBefore: len(specs),
		CellsBefore:   cube.NumCells(),
	}
	type cand struct {
		spec  core.CuboidSpec
		bytes int
	}
	perItem := map[string]int{}
	cands := make([]cand, 0, len(specs))
	for _, s := range specs {
		perItem[s.Item.Key()]++
		b := cube.Cuboid(s).EncodedBytes()
		res.BytesBefore += b
		cands = append(cands, cand{spec: s, bytes: b})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bytes != cands[j].bytes {
			return cands[i].bytes > cands[j].bytes
		}
		return cands[i].spec.Key() < cands[j].spec.Key()
	})

	dropped := map[string]Drop{}
	aside := map[string]*core.Cuboid{}
	for _, cd := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The census anchor: reconstruction certifies counts against a
		// materialized cuboid at the same item level, so the last one of an
		// item level can never be recomputed.
		if perItem[cd.spec.Item.Key()] <= 1 {
			continue
		}
		cb := cube.DropCuboid(cd.spec)
		if cb == nil {
			continue
		}
		maxFold, ok, err := verifyCuboid(ctx, cube, cb, cfg.CostBudget)
		if err != nil {
			cube.RestoreCuboid(cb)
			return nil, err
		}
		if !ok {
			cube.RestoreCuboid(cb)
			continue
		}
		perItem[cd.spec.Item.Key()]--
		key := cd.spec.Key()
		dropped[key] = Drop{Cuboid: key, Cells: len(cb.Cells), Bytes: cd.bytes, MaxFold: maxFold}
		aside[key] = cb
	}

	for changed := true; changed; {
		changed = false
		keys := make([]string, 0, len(dropped))
		for k := range dropped {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			cb := aside[key]
			maxFold, ok, err := verifyCuboid(ctx, cube, cb, cfg.CostBudget)
			if err != nil {
				return nil, err
			}
			if !ok {
				cube.RestoreCuboid(cb)
				perItem[cb.Spec.Item.Key()]++
				delete(dropped, key)
				delete(aside, key)
				changed = true
				continue
			}
			d := dropped[key]
			d.MaxFold = maxFold
			dropped[key] = d
		}
	}

	for _, s := range cube.MaterializedSpecs() {
		res.BytesAfter += cube.Cuboid(s).EncodedBytes()
	}
	res.CuboidsAfter = res.CuboidsBefore - len(dropped)
	res.CellsAfter = cube.NumCells()
	for _, d := range dropped {
		res.Dropped = append(res.Dropped, d)
	}
	sort.Slice(res.Dropped, func(i, j int) bool {
		if res.Dropped[i].Bytes != res.Dropped[j].Bytes {
			return res.Dropped[i].Bytes > res.Dropped[j].Bytes
		}
		return res.Dropped[i].Cuboid < res.Dropped[j].Cuboid
	})
	return res, nil
}

// verifyCuboid checks the exactness certificate for every cell of a
// dropped cuboid against the cube as it now stands: reconstruction must
// succeed, stay within the fold budget, and digest byte-identical to the
// original cell. ok=false means the cuboid must stay materialized; err is
// reserved for cancellation.
func verifyCuboid(ctx context.Context, cube *core.Cube, cb *core.Cuboid, budget int) (maxFold int, ok bool, err error) {
	for _, cell := range cb.SortedCells() {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		rec, folded, rerr := cube.ReconstructCell(ctx, cb.Spec, cell.Values)
		if rerr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return 0, false, cerr
			}
			return 0, false, nil
		}
		if budget > 0 && len(folded) > budget {
			return 0, false, nil
		}
		if core.CellDigest(rec) != core.CellDigest(cell) {
			return 0, false, nil
		}
		if len(folded) > maxFold {
			maxFold = len(folded)
		}
	}
	return maxFold, true, nil
}
