package olap

import (
	"context"
	"net/url"
	"testing"
)

// FuzzParseQuery drives arbitrary /v2/query parameter strings through
// ParseQuery and, when they parse, through Answer: parsing must reject
// cleanly or produce a query the engine answers without panicking. The cube
// is the pruned running example, so the computed-cell path is reachable
// from fuzzed input too.
func FuzzParseQuery(f *testing.F) {
	_, cube := buildPaperCube(f)
	if _, err := Prune(context.Background(), cube, PlannerConfig{}); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		"",
		"op=cell&cell=product=shoes,brand=nike&pathlevel=1",
		"op=cell&cell=product=sandals,brand=nike",
		"op=rollup&cell=product=shoes,brand=nike&dim=product",
		"op=drilldown&cell=product=shoes&dim=brand&max=2",
		"op=slice&select=brand=nike",
		"op=dice&cell=product=shoes&select=brand=nike,product=shoes&max=3",
		"op=cell&cell=product=outerwear&nocompute=1",
		"op=pivot",
		"cell=product%3Dbogus",
		"pathlevel=-1",
		"select=brand",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		params, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := ParseQuery(cube, params)
		if err != nil {
			return
		}
		a, err := cube.Answer(context.Background(), q)
		if err == nil && a == nil {
			t.Fatal("nil answer without error")
		}
	})
}
