package paperex_test

import (
	"testing"

	"flowcube/internal/paperex"
	"flowcube/internal/pathdb"
)

func TestFixtureShape(t *testing.T) {
	ex := paperex.New()
	if ex.DB.Len() != 8 {
		t.Fatalf("Table 1 has 8 records, fixture has %d", ex.DB.Len())
	}
	if ex.Product.Depth() != 3 || ex.Brand.Depth() != 2 || ex.Location.Depth() != 2 {
		t.Errorf("hierarchy depths: product=%d brand=%d location=%d",
			ex.Product.Depth(), ex.Brand.Depth(), ex.Location.Depth())
	}
	// Record 1 is (tennis, nike, (f,10)(d,2)(t,1)(s,5)(c,0)).
	r := ex.DB.Records[0]
	if ex.Product.Name(r.Dims[0]) != "tennis" || ex.Brand.Name(r.Dims[1]) != "nike" {
		t.Errorf("record 1 dims wrong")
	}
	if got := r.Path.String(ex.Location); got != "(f,10)(d,2)(t,1)(s,5)(c,0)" {
		t.Errorf("record 1 path = %s", got)
	}
}

func TestViews(t *testing.T) {
	ex := paperex.New()

	base := ex.BasePathLevel()
	p := ex.DB.Records[0].Path
	if !pathdb.AggregatePath(p, base, nil).Equal(p) {
		t.Errorf("base level must be the identity")
	}

	// Transportation view (§4.1): path 1 keeps d, t, w at detail, folds
	// f into factory and s,c into store.
	tv := ex.TransportPathLevel()
	agg := pathdb.AggregatePath(p, tv, nil)
	if got := agg.String(ex.Location); got != "(factory,10)(d,2)(t,1)(store,5)" {
		t.Errorf("transport view of path 1 = %s", got)
	}
	// Path 6 (f,10)(t,1)(w,5): warehouse survives aggregation.
	agg6 := pathdb.AggregatePath(ex.DB.Records[5].Path, tv, nil)
	if got := agg6.String(ex.Location); got != "(factory,10)(t,1)(w,5)" {
		t.Errorf("transport view of path 6 = %s", got)
	}

	// Store view (Figure 1 top): in-store locations at detail,
	// transportation collapsed.
	sv := ex.StorePathLevel()
	aggS := pathdb.AggregatePath(p, sv, nil)
	if got := aggS.String(ex.Location); got != "(factory,10)(transportation,3)(s,5)(c,0)" {
		t.Errorf("store view of path 1 = %s", got)
	}
}
