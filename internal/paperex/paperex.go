// Package paperex builds the paper's running example — the Table-1 path
// database with its product/brand hierarchies and the Figure-5 location
// hierarchy — as a shared fixture for tests and the example programs.
package paperex

import (
	"flowcube/internal/hierarchy"
	"flowcube/internal/pathdb"
)

// Example bundles the running-example schema, database and the concept ids
// tests refer to by name.
type Example struct {
	Product  *hierarchy.Hierarchy
	Brand    *hierarchy.Hierarchy
	Location *hierarchy.Hierarchy
	Schema   *pathdb.Schema
	DB       *pathdb.DB
}

// New constructs the running example.
//
// Product hierarchy (Figure 2, restricted to the concepts Table 1 uses; the
// paper omits the category level in its encoding because every product in
// the example is clothing, but we keep it for completeness):
//
//   - → clothing → {shoes → {tennis, sandals}, outerwear → {shirt, jacket}}
//
// Brand hierarchy:
//
//   - → sports → {nike, adidas}
//
// Location hierarchy (Figure 5):
//
//   - → transportation → {dist.center(d), truck(t)}
//     → factory(f)
//     → store → {warehouse(w), backroom(b), shelf(s), checkout(c)}
//
// Table 1 places the warehouse under store's sibling set in the flow
// diagrams; Figure 5 shows warehouse under store, which we follow.
func New() *Example {
	product := hierarchy.New("product")
	product.MustAddPath("clothing", "shoes", "tennis")
	product.MustAddPath("clothing", "shoes", "sandals")
	product.MustAddPath("clothing", "outerwear", "shirt")
	product.MustAddPath("clothing", "outerwear", "jacket")

	brand := hierarchy.New("brand")
	brand.MustAddPath("sports", "nike")
	brand.MustAddPath("sports", "adidas")

	location := hierarchy.New("location")
	location.MustAddPath("transportation", "d") // distribution center
	location.MustAddPath("transportation", "t") // truck
	location.MustAddPath("factory", "f")
	location.MustAddPath("store", "w") // warehouse
	location.MustAddPath("store", "b") // backroom
	location.MustAddPath("store", "s") // shelf
	location.MustAddPath("store", "c") // checkout

	schema := pathdb.MustNewSchema(location, product, brand)
	db := pathdb.New(schema)

	path := func(spec ...any) pathdb.Path {
		var p pathdb.Path
		for i := 0; i < len(spec); i += 2 {
			p = append(p, pathdb.Stage{
				Location: location.MustLookup(spec[i].(string)),
				Duration: int64(spec[i+1].(int)),
			})
		}
		return p
	}
	rec := func(prod, br string, p pathdb.Path) pathdb.Record {
		return pathdb.Record{
			Dims: []hierarchy.NodeID{product.MustLookup(prod), brand.MustLookup(br)},
			Path: p,
		}
	}

	// The eight Table-1 records, in order (ids 1..8 in the paper).
	db.MustAppend(rec("tennis", "nike", path("f", 10, "d", 2, "t", 1, "s", 5, "c", 0)))
	db.MustAppend(rec("tennis", "nike", path("f", 5, "d", 2, "t", 1, "s", 10, "c", 0)))
	db.MustAppend(rec("sandals", "nike", path("f", 10, "d", 1, "t", 2, "s", 5, "c", 0)))
	db.MustAppend(rec("shirt", "nike", path("f", 10, "t", 1, "s", 5, "c", 0)))
	db.MustAppend(rec("jacket", "nike", path("f", 10, "t", 2, "s", 5, "c", 1)))
	db.MustAppend(rec("jacket", "nike", path("f", 10, "t", 1, "w", 5)))
	db.MustAppend(rec("tennis", "adidas", path("f", 5, "d", 2, "t", 2, "s", 20)))
	db.MustAppend(rec("tennis", "adidas", path("f", 5, "d", 2, "t", 3, "s", 10, "d", 5)))

	return &Example{
		Product:  product,
		Brand:    brand,
		Location: location,
		Schema:   schema,
		DB:       db,
	}
}

// BasePathLevel returns the identity path abstraction level: locations at
// leaf detail, durations at source precision.
func (e *Example) BasePathLevel() pathdb.PathLevel {
	return pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(e.Location, e.Location.Depth()),
		Time: pathdb.TimeBase,
	}
}

// TransportPathLevel returns the §4.1 / Figure-5 cut
// ⟨dist.center, truck, warehouse, factory, store⟩: transportation locations
// and the warehouse at full detail, the remaining store locations collapsed
// into "store". The warehouse is kept even though it sits below store in
// the hierarchy — the deepest selected concept wins.
func (e *Example) TransportPathLevel() pathdb.PathLevel {
	cut, err := hierarchy.CutByNames(e.Location, "d", "t", "w", "factory", "store")
	if err != nil {
		panic(err)
	}
	return pathdb.PathLevel{Cut: cut, Time: pathdb.TimeBase}
}

// StorePathLevel returns the store manager's view of Figure 1: store
// locations at full detail, transportation aggregated.
func (e *Example) StorePathLevel() pathdb.PathLevel {
	cut, err := hierarchy.CutByNames(e.Location, "transportation", "factory", "w", "b", "s", "c")
	if err != nil {
		panic(err)
	}
	return pathdb.PathLevel{Cut: cut, Time: pathdb.TimeBase}
}
