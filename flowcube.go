// Package flowcube is a Go implementation of the FlowCube model of
// Gonzalez, Han & Li (VLDB 2006): an OLAP data cube over RFID path
// databases whose cell measure is a flowgraph — a tree-shaped probabilistic
// workflow summarizing commodity flows, annotated with duration and
// transition distributions and their significant exceptions.
//
// # Model
//
// A path database stores one record per tracked item: path-independent
// dimension values (product, brand, ...) described by concept hierarchies,
// plus the item's path of (location, duration) stages. A flowcube
// aggregates such records along two interacting lattices:
//
//   - the item abstraction lattice — one hierarchy level per dimension, and
//   - the path abstraction lattice — a cut through the location hierarchy
//     crossed with a duration granularity; consecutive stages that
//     aggregate to the same concept merge.
//
// Each cell of a cuboid ⟨Il, Pl⟩ groups the records sharing dimension
// values at level Il and measures them with a flowgraph over their paths
// aggregated to Pl. Cells below a minimum path count δ are not
// materialized (iceberg flowcube), and cells whose flowgraph is τ-similar
// to all of their item-lattice parents can be compressed away
// (non-redundant flowcube) and answered by roll-up inference.
//
// # Quick start
//
//	schema := flowcube.MustNewSchema(location, product, brand)
//	db := flowcube.NewDB(schema)
//	// ... append records ...
//	cfg, err := flowcube.NewConfig(flowcube.Plan{PathLevels: levels},
//		flowcube.WithDelta(25),     // absolute iceberg threshold δ
//		flowcube.WithEpsilon(0.1),  // exception significance
//		flowcube.WithExceptions(),  // mine exceptions
//		flowcube.WithDeltaLedger(), // carry sub-δ counts for ApplyDelta
//	)
//	cube, err := flowcube.BuildContext(ctx, db, cfg)
//	a, err := cube.Answer(ctx, flowcube.Query{Spec: spec, Values: values})
//	fmt.Print(a.Cells[0].Graph)
//
// NewConfig validates eagerly and returns a *ConfigError for bad settings;
// a Config literal passed to Build is validated the same way. The full
// option set: WithDelta (absolute δ) or WithMinSupport (fractional),
// WithEpsilon, WithTau, WithWorkers, WithExceptions, WithDeltaLedger.
// Build and LoadCube are the context-free forms of BuildContext and
// LoadCubeContext.
//
// # Query algebra
//
// Cube.Answer executes one OLAP Query — a cell lookup (OpCell, the zero
// value), a roll-up or drill-down along one dimension, or a slice/dice over
// one cuboid — and reports per-cell Provenance: Materialized for a direct
// hit, ComputedFromDescendants when a non-materialized cell was
// reconstructed exactly at query time by folding a materialized descendant
// cuboid (certified against the cell's census count, so the fold is exact
// or refused), and AncestorFallback for the paper's roll-up inference. The
// materialization planner in internal/olap exploits the computed path to
// drop cuboids whose cells stay answerable; QueryGraph remains as a
// deprecated single-cell wrapper. See DESIGN.md §12.
//
// # Streaming append
//
// A cube built with an absolute δ (WithDelta) is maintainable under
// streaming appends: ApplyDelta(cube, db, batch) folds a batch of new
// records into the materialized cube — touching only the affected cells —
// and is byte-exact against a full rebuild over the union database.
// Serving processes patch a (*Cube).Clone and swap snapshots; see
// DESIGN.md §9 and cmd/flowserve's POST /admin/append.
//
// See examples/quickstart for a complete program built on the paper's
// running example, and DESIGN.md for the system inventory.
package flowcube

import (
	"context"
	"io"

	"flowcube/internal/cleaning"
	"flowcube/internal/core"
	"flowcube/internal/datagen"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/pdfa"
	"flowcube/internal/procmine"
	"flowcube/internal/transact"
)

// Concept hierarchies and abstraction machinery.
type (
	// Hierarchy is a concept hierarchy: a tree of concepts rooted at "*".
	Hierarchy = hierarchy.Hierarchy
	// NodeID identifies a concept within one Hierarchy.
	NodeID = hierarchy.NodeID
	// Cut selects the location concepts a path abstraction level keeps.
	Cut = hierarchy.Cut
)

// Path database model.
type (
	// Schema describes a path database: dimension hierarchies plus the
	// location hierarchy.
	Schema = pathdb.Schema
	// DB is an in-memory path database.
	DB = pathdb.DB
	// Record is one path database tuple.
	Record = pathdb.Record
	// Path is an item's ordered sequence of stages.
	Path = pathdb.Path
	// Stage is one (location, duration) step.
	Stage = pathdb.Stage
	// PathLevel is a path abstraction level: a location cut plus a time
	// level.
	PathLevel = pathdb.PathLevel
	// TimeLevel is the duration component of a path abstraction level.
	TimeLevel = pathdb.TimeLevel
)

// Flowgraph measure.
type (
	// Flowgraph is the probabilistic workflow measure of a cell.
	Flowgraph = flowgraph.Graph
	// FlowNode is one vertex of a flowgraph: a unique path prefix.
	FlowNode = flowgraph.Node
	// Exception is a significant conditional deviation of a node's
	// distributions.
	Exception = flowgraph.Exception
	// StagePin is one conditioning constraint of an exception.
	StagePin = flowgraph.StagePin
)

// Cube assembly.
type (
	// Config parameterizes Build.
	Config = core.Config
	// Cube is a materialized flowcube.
	Cube = core.Cube
	// Cuboid is one materialized cuboid ⟨Il, Pl⟩.
	Cuboid = core.Cuboid
	// Cell is one flowcube cell.
	Cell = core.Cell
	// CuboidSpec identifies a cuboid.
	CuboidSpec = core.CuboidSpec
	// ItemLevel is an item abstraction level.
	ItemLevel = core.ItemLevel
	// Query describes one OLAP operation for Cube.Answer.
	Query = core.Query
	// Answer is the result of one Query, with typed per-cell provenance.
	Answer = core.Answer
	// CellAnswer is one answered cell of an Answer.
	CellAnswer = core.CellAnswer
	// CellRef names one cell of one cuboid (e.g. the folded descendants of
	// a computed answer).
	CellRef = core.CellRef
	// Selector restricts one dimension to one concept for OpSlice/OpDice.
	Selector = core.Selector
	// Op is the OLAP operation a Query performs.
	Op = core.Op
	// Provenance says how a cell was answered.
	Provenance = core.Provenance
	// Plan is the encoding/materialization plan.
	Plan = transact.Plan
	// MiningOptions configures the frequent-pattern miner directly.
	MiningOptions = mining.Options
)

// Synthetic workloads (the paper's §6.1 generator).
type (
	// GenConfig parameterizes the synthetic path generator.
	GenConfig = datagen.Config
	// Dataset is a generated path database.
	Dataset = datagen.Dataset
)

// Terminate is the transition outcome standing for "the path ends here" in
// a flowgraph's transition distributions.
const Terminate = flowgraph.Terminate

// RootConcept is the NodeID of the apex concept "*" in every hierarchy.
const RootConcept = hierarchy.Root

// The OLAP operations of a Query.
const (
	OpCell      = core.OpCell
	OpRollUp    = core.OpRollUp
	OpDrillDown = core.OpDrillDown
	OpSlice     = core.OpSlice
	OpDice      = core.OpDice
)

// The provenance of an answered cell.
const (
	Materialized            = core.Materialized
	AncestorFallback        = core.AncestorFallback
	ComputedFromDescendants = core.ComputedFromDescendants
)

// NewHierarchy returns a hierarchy for the named dimension containing only
// the root concept "*".
func NewHierarchy(dimension string) *Hierarchy { return hierarchy.New(dimension) }

// GenerateHierarchy builds a balanced hierarchy with the given fanouts.
func GenerateHierarchy(dimension string, fanouts ...int) *Hierarchy {
	return hierarchy.Generate(dimension, fanouts...)
}

// LevelCut builds the uniform location cut at the given hierarchy level.
func LevelCut(h *Hierarchy, level int) *Cut { return hierarchy.LevelCut(h, level) }

// CutByNames builds a location cut from concept names. The set may nest:
// the deepest selected concept wins, as in the paper's Figure-5 cut that
// keeps the warehouse at detail inside an aggregated store.
func CutByNames(h *Hierarchy, names ...string) (*Cut, error) {
	return hierarchy.CutByNames(h, names...)
}

// TimeBase is the identity time level (durations at source precision).
var TimeBase = pathdb.TimeBase

// TimeAny is the fully aggregated ('*') time level.
var TimeAny = pathdb.TimeAny

// NewSchema builds a path database schema.
func NewSchema(location *Hierarchy, dims ...*Hierarchy) (*Schema, error) {
	return pathdb.NewSchema(location, dims...)
}

// MustNewSchema is NewSchema for statically-known schemas; it panics on
// error.
func MustNewSchema(location *Hierarchy, dims ...*Hierarchy) *Schema {
	return pathdb.MustNewSchema(location, dims...)
}

// NewDB returns an empty path database over the schema.
func NewDB(schema *Schema) *DB { return pathdb.New(schema) }

// AggregatePath aggregates a path to a path abstraction level, merging
// consecutive stages that collapse to the same concept.
func AggregatePath(p Path, level PathLevel) Path {
	return pathdb.AggregatePath(p, level, nil)
}

// Build materializes an iceberg flowcube for the path database: it runs
// the Shared algorithm over the encoded transaction database, constructs a
// flowgraph per frequent cell, mines exceptions, and — when Config.Tau is
// set — marks redundant cells.
func Build(db *DB, cfg Config) (*Cube, error) { return BuildContext(context.Background(), db, cfg) }

// BuildFlowgraph summarizes a path collection directly, outside any cube.
func BuildFlowgraph(loc *Hierarchy, level PathLevel, paths []Path) *Flowgraph {
	return flowgraph.Build(loc, level, paths, nil)
}

// Similarity returns the flowgraph similarity ϕ in (0, 1] used by
// redundancy elimination: 1 for identical induced models.
func Similarity(a, b *Flowgraph) float64 { return flowgraph.Similarity(a, b) }

// Divergence returns the asymmetric weighted KL divergence D(a ‖ b).
func Divergence(a, b *Flowgraph) float64 { return flowgraph.Divergence(a, b) }

// PDFA induction (the grammar-learning comparator of related work §7).
type (
	// PDFA is a probabilistic deterministic finite automaton learned from
	// paths by ALERGIA state merging.
	PDFA = pdfa.Automaton
	// PDFAOptions configures the learner; Alpha = 0 disables merging.
	PDFAOptions = pdfa.Options
)

// LearnPDFA induces a PDFA over the paths' location sequences — the
// related-work alternative to flowgraphs, which generalizes across
// branches but models neither durations nor exceptions.
func LearnPDFA(paths []Path, opts PDFAOptions) (*PDFA, error) {
	return pdfa.Learn(paths, opts)
}

// WorkflowNet is a process-mining workflow net: one node per location with
// pooled transition/duration statistics — the other related-work
// comparator, smaller than a flowgraph but context-blind.
type WorkflowNet = procmine.Net

// InduceWorkflow builds the workflow net of a path collection.
func InduceWorkflow(loc *Hierarchy, paths []Path) *WorkflowNet {
	return procmine.Induce(loc, paths)
}

// NodeDiff describes one prefix's behavioural shift between two
// flowgraphs.
type NodeDiff = flowgraph.NodeDiff

// Contrast compares a current flowgraph against a baseline (intro
// question 3: "contrast path durations with historic flow information"),
// returning per-node differences ordered by affected flow. k <= 0 returns
// all.
func Contrast(current, baseline *Flowgraph, k int) []NodeDiff {
	return flowgraph.Contrast(current, baseline, k)
}

// Generate builds a synthetic path database with the paper's §6.1
// generator.
func Generate(cfg GenConfig) (*Dataset, error) { return datagen.Generate(cfg) }

// DefaultGenConfig returns the baseline synthetic workload configuration.
func DefaultGenConfig() GenConfig { return datagen.Default() }

// RFID stream cleaning (paper §2): raw (EPC, location, time) readings →
// path database.
type (
	// Reading is one raw RFID reading.
	Reading = cleaning.Reading
	// TaggedItem carries an EPC's path-independent dimension values.
	TaggedItem = cleaning.TaggedItem
	// CleanOptions configures sessionization and duration discretization.
	CleanOptions = cleaning.Options
	// PathSummary is one complete route of a flowgraph with its
	// probability and expected stage durations.
	PathSummary = flowgraph.PathSummary
	// LayerPlan describes a layered partial-materialization request
	// (minimum interesting layer, observation layer, drill path).
	LayerPlan = core.LayerPlan
)

// Clean builds a path database from a raw RFID reading stream, grouping
// readings by EPC, collapsing stays into stages, and discretizing
// durations.
func Clean(schema *Schema, readings []Reading, items map[string]TaggedItem, opts CleanOptions) (*DB, error) {
	return cleaning.Clean(schema, readings, items, opts)
}

// PlanCuboids expands a layered partial-materialization plan into the
// cuboid list for Config.Cuboids.
func PlanCuboids(lp LayerPlan, numPathLevels int) ([]CuboidSpec, error) {
	return core.PlanCuboids(lp, numPathLevels)
}

// LoadCube reconstructs a cube previously serialized with (*Cube).Save.
func LoadCube(r io.Reader) (*Cube, error) { return LoadCubeContext(context.Background(), r) }
