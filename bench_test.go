// Benchmarks regenerating the paper's evaluation (§6), one per figure, plus
// ablation and substrate micro-benchmarks. Each figure bench runs the three
// algorithms on a representative configuration of that figure's sweep at a
// laptop-friendly scale; the full sweeps live in cmd/flowbench (use
// -scale 1 there for the paper's 100k–1M sizes).
package flowcube_test

import (
	"fmt"
	"sync"
	"testing"

	"flowcube/internal/cubing"
	"flowcube/internal/datagen"
	"flowcube/internal/flowgraph"
	"flowcube/internal/hierarchy"
	"flowcube/internal/mining"
	"flowcube/internal/pathdb"
	"flowcube/internal/transact"
)

// benchN is the path count used by the figure benches: 5% of the paper's
// baseline 100k so that the full `go test -bench=.` run stays in minutes.
const benchN = 5000

type fixture struct {
	ds   *datagen.Dataset
	syms *transact.Symbols
	txs  []transact.Transaction
}

var (
	fixtures   = map[string]*fixture{}
	fixtureMu  sync.Mutex
	fixtureGen = map[string]func() datagen.Config{
		"base": func() datagen.Config {
			cfg := datagen.Default()
			cfg.NumPaths = benchN
			return cfg
		},
		"sparse10d": func() datagen.Config {
			cfg := datagen.Default()
			cfg.NumPaths = benchN
			cfg.NumDims = 10
			cfg.DimFanouts = [3]int{5, 5, 10}
			cfg.DimSkew = 0.2
			return cfg
		},
		"dense-items": func() datagen.Config {
			cfg := datagen.Default()
			cfg.NumPaths = benchN
			cfg.DimFanouts = [3]int{2, 2, 5}
			return cfg
		},
		"dense-paths": func() datagen.Config {
			cfg := datagen.Default()
			cfg.NumPaths = benchN
			cfg.NumSequences = 10
			return cfg
		},
	}
)

func getFixture(b *testing.B, name string) *fixture {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	gen, ok := fixtureGen[name]
	if !ok {
		b.Fatalf("unknown fixture %q", name)
	}
	ds := datagen.MustGenerate(gen())
	syms := transact.MustNewSymbols(ds.Schema, ds.DefaultPlan())
	f := &fixture{ds: ds, syms: syms, txs: syms.Encode(ds.DB)}
	fixtures[name] = f
	return f
}

func benchMine(b *testing.B, fixtureName string, opts mining.Options) {
	f := getFixture(b, fixtureName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mining.Mine(f.syms, f.txs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Aborted {
			b.Fatalf("mining aborted by candidate limit")
		}
	}
}

func benchCubing(b *testing.B, fixtureName string, minSupport float64) {
	f := getFixture(b, fixtureName)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubing.Run(f.ds.DB, f.syms, mining.Options{MinSupport: minSupport}); err != nil {
			b.Fatal(err)
		}
	}
}

func basicOpts(minSupport float64) mining.Options {
	o := mining.BasicOptions(minSupport)
	o.CandidateLimit = 5_000_000
	return o
}

// Figure 6 — runtime vs database size (representative point N=5000, δ=1%).
func BenchmarkFig6DatabaseSize(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchMine(b, "base", mining.SharedOptions(0.01)) })
	b.Run("cubing", func(b *testing.B) { benchCubing(b, "base", 0.01) })
	b.Run("basic", func(b *testing.B) { benchMine(b, "base", basicOpts(0.01)) })
}

// Figure 7 — runtime vs minimum support: a low (1%) and high (2%) point.
// The paper's full 0.3%–2% sweep is cmd/flowbench -fig 7; at 0.3% the
// Basic baseline takes minutes even at this reduced scale, which is itself
// the figure's point.
func BenchmarkFig7MinSupport(b *testing.B) {
	b.Run("shared/1%", func(b *testing.B) { benchMine(b, "base", mining.SharedOptions(0.01)) })
	b.Run("shared/2%", func(b *testing.B) { benchMine(b, "base", mining.SharedOptions(0.02)) })
	b.Run("cubing/1%", func(b *testing.B) { benchCubing(b, "base", 0.01) })
	b.Run("cubing/2%", func(b *testing.B) { benchCubing(b, "base", 0.02) })
	b.Run("basic/1%", func(b *testing.B) { benchMine(b, "base", basicOpts(0.01)) })
	b.Run("basic/2%", func(b *testing.B) { benchMine(b, "base", basicOpts(0.02)) })
}

// Figure 8 — runtime vs dimensions (sparse, d=10 extreme).
func BenchmarkFig8Dimensions(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchMine(b, "sparse10d", mining.SharedOptions(0.01)) })
	b.Run("cubing", func(b *testing.B) { benchCubing(b, "sparse10d", 0.01) })
	b.Run("basic", func(b *testing.B) { benchMine(b, "sparse10d", basicOpts(0.01)) })
}

// Figure 9 — runtime vs item density (the densest dataset "a").
func BenchmarkFig9ItemDensity(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchMine(b, "dense-items", mining.SharedOptions(0.01)) })
	b.Run("cubing", func(b *testing.B) { benchCubing(b, "dense-items", 0.01) })
}

// Figure 10 — runtime vs path density (10 distinct sequences, the dense
// end; the paper could not run Basic here at all).
func BenchmarkFig10PathDensity(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchMine(b, "dense-paths", mining.SharedOptions(0.01)) })
	b.Run("cubing", func(b *testing.B) { benchCubing(b, "dense-paths", 0.01) })
}

// Figure 11 — pruning power: the same mining run with and without
// candidate pruning; compare with -benchtime and the reported candidate
// counts from cmd/flowbench -fig 11.
func BenchmarkFig11PruningPower(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchMine(b, "base", mining.SharedOptions(0.01)) })
	b.Run("basic", func(b *testing.B) { benchMine(b, "base", basicOpts(0.01)) })
}

// Ablation A1 — individual pruning rules.
func BenchmarkAblationPruning(b *testing.B) {
	variants := map[string]mining.Options{
		"no-precount": {MinSupport: 0.01, PruneAncestor: true, PruneLink: true},
		"no-link":     {MinSupport: 0.01, PruneAncestor: true, Precount: true},
		"no-ancestor": {MinSupport: 0.01, PruneLink: true, Precount: true},
	}
	for name, opts := range variants {
		opts.CandidateLimit = 5_000_000
		b.Run(name, func(b *testing.B) { benchMine(b, "base", opts) })
	}
}

// Ablation A2 — algebraic flowgraph merge (Lemma 4.2) vs path rescan.
func BenchmarkAblationMerge(b *testing.B) {
	f := getFixture(b, "base")
	level := pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(f.ds.Schema.Location, f.ds.Schema.Location.Depth()),
		Time: pathdb.TimeBase,
	}
	h := f.ds.Schema.Dims[0]
	parts := map[hierarchy.NodeID][]pathdb.Path{}
	var all []pathdb.Path
	for _, r := range f.ds.DB.Records {
		k := h.AncestorAt(r.Dims[0], 1)
		parts[k] = append(parts[k], r.Path)
		all = append(all, r.Path)
	}
	var children []*flowgraph.Graph
	for _, paths := range parts {
		children = append(children, flowgraph.Build(f.ds.Schema.Location, level, paths, nil))
	}
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := flowgraph.New(f.ds.Schema.Location, level, nil)
			for _, c := range children {
				if err := g.Merge(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			flowgraph.Build(f.ds.Schema.Location, level, all, nil)
		}
	})
}

// Ablation A6 — Cubing's per-cell engine.
func BenchmarkAblationEngine(b *testing.B) {
	b.Run("apriori", func(b *testing.B) { benchCubingEngine(b, cubing.EngineApriori) })
	b.Run("fpgrowth", func(b *testing.B) { benchCubingEngine(b, cubing.EngineFPGrowth) })
}

func benchCubingEngine(b *testing.B, eng cubing.Engine) {
	f := getFixture(b, "base")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubing.RunEngine(f.ds.DB, f.syms, mining.Options{MinSupport: 0.01}, eng); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation A7 — Shared counting across workers.
func BenchmarkAblationParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := mining.SharedOptions(0.01)
			opts.Workers = workers
			benchMine(b, "base", opts)
		})
	}
}

// Substrate micro-benchmarks.

func BenchmarkEncodeTransaction(b *testing.B) {
	f := getFixture(b, "base")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.syms.EncodeRecord(f.ds.DB.Records[i%f.ds.DB.Len()])
	}
}

func BenchmarkFlowgraphBuild(b *testing.B) {
	f := getFixture(b, "base")
	level := pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(f.ds.Schema.Location, f.ds.Schema.Location.Depth()),
		Time: pathdb.TimeBase,
	}
	var paths []pathdb.Path
	for _, r := range f.ds.DB.Records {
		paths = append(paths, r.Path)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flowgraph.Build(f.ds.Schema.Location, level, paths, nil)
	}
}

func BenchmarkFlowgraphSimilarity(b *testing.B) {
	f := getFixture(b, "base")
	level := pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(f.ds.Schema.Location, f.ds.Schema.Location.Depth()),
		Time: pathdb.TimeBase,
	}
	var a, c []pathdb.Path
	for i, r := range f.ds.DB.Records {
		if i%2 == 0 {
			a = append(a, r.Path)
		} else {
			c = append(c, r.Path)
		}
	}
	ga := flowgraph.Build(f.ds.Schema.Location, level, a, nil)
	gc := flowgraph.Build(f.ds.Schema.Location, level, c, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flowgraph.Similarity(ga, gc)
	}
}

func BenchmarkExceptionMining(b *testing.B) {
	f := getFixture(b, "base")
	level := pathdb.PathLevel{
		Cut:  hierarchy.LevelCut(f.ds.Schema.Location, f.ds.Schema.Location.Depth()),
		Time: pathdb.TimeBase,
	}
	var paths []pathdb.Path
	for i, r := range f.ds.DB.Records {
		if i == 1000 {
			break
		}
		paths = append(paths, r.Path)
	}
	g := flowgraph.Build(f.ds.Schema.Location, level, paths, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MineExceptions(paths, 0.1, 10)
	}
}
