# Convenience targets; the source of truth for CI-style verification is
# scripts/check.sh (vet + build + flowlint + race-detector tests + short
# fuzz).

.PHONY: build test check lint fuzz-short bench bench-serve

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Run the project's static-analysis suite (see cmd/flowlint and DESIGN.md
# "Static analysis & invariants"). Exit status 1 means findings.
lint:
	go run ./cmd/flowlint ./...

# 10-second fuzz pass over the text parsers (cell specs, .fdb records).
fuzz-short:
	go test ./internal/core -run '^$$' -fuzz FuzzParseCellSpec -fuzztime 10s
	go test ./internal/pathdb -run '^$$' -fuzz FuzzRead -fuzztime 10s

# Regenerate the canonical counting-core benchmark suite (scan-1, trie
# counting, populate) checked in as BENCH_mining.json. Takes ~10 minutes;
# see DESIGN.md "Counting data layout".
bench:
	go run ./cmd/flowbench -micro -quiet -micro-out BENCH_mining.json

# Regenerate the serving latency microbenchmark in results/.
bench-serve:
	FLOWSERVE_RESULTS=results/serve_latency.json go test ./internal/server -run ServeLatency -v
	go test ./internal/server -bench BenchmarkCell -run '^$$'
