# Convenience targets; the source of truth for CI-style verification is
# scripts/check.sh (vet + build + race-detector tests).

.PHONY: build test check bench-serve

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Regenerate the serving latency microbenchmark in results/.
bench-serve:
	FLOWSERVE_RESULTS=results/serve_latency.json go test ./internal/server -run ServeLatency -v
	go test ./internal/server -bench BenchmarkCell -run '^$$'
