# Convenience targets; the source of truth for CI-style verification is
# scripts/check.sh (vet + build + flowlint + race-detector tests + cluster
# bench smoke + short fuzz).

.PHONY: build test check lint fuzz-short fuzz-long bench bench-serve bench-persist bench-incr bench-ingest bench-cluster bench-olap

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Run the project's static-analysis suite (see cmd/flowlint and DESIGN.md
# "Static analysis & invariants"): ten analyzers over cross-package facts.
# Exit status 1 means findings; -stats reports per-analyzer counts and
# wall time, and a failure names the offending analyzers.
lint:
	go run ./cmd/flowlint -stats ./...

# 10-second fuzz pass over the text parsers (cell specs, .fdb records) and
# the binary snapshot decoder. Minimization is iteration-bounded: snapshot
# inputs are tens of kilobytes, and the default 60s time-based minimization
# of each newly interesting input would dwarf the fuzz time itself.
fuzz-short:
	go test ./internal/core -run '^$$' -fuzz FuzzParseCellSpec -fuzztime 10s
	go test ./internal/olap -run '^$$' -fuzz FuzzParseQuery -fuzztime 10s
	go test ./internal/core -run '^$$' -fuzz FuzzLoadSnapshot -fuzztime 10s -fuzzminimizetime 10x
	go test ./internal/pathdb -run '^$$' -fuzz FuzzRead -fuzztime 10s
	go test ./internal/incr -run '^$$' -fuzz FuzzApplyDelta -fuzztime 10s
	go test ./internal/ingest -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s

# Ten-fold fuzz-short (100s per target): the weekly scheduled CI job. Long
# enough to reach coverage plateaus the 10s pass misses, short enough that
# four targets finish inside the job timeout.
fuzz-long:
	go test ./internal/core -run '^$$' -fuzz FuzzParseCellSpec -fuzztime 100s
	go test ./internal/olap -run '^$$' -fuzz FuzzParseQuery -fuzztime 100s
	go test ./internal/core -run '^$$' -fuzz FuzzLoadSnapshot -fuzztime 100s -fuzzminimizetime 10x
	go test ./internal/pathdb -run '^$$' -fuzz FuzzRead -fuzztime 100s
	go test ./internal/incr -run '^$$' -fuzz FuzzApplyDelta -fuzztime 100s
	go test ./internal/ingest -run '^$$' -fuzz FuzzWALReplay -fuzztime 100s

# Regenerate the canonical counting-core benchmark suite (scan-1, trie
# counting, populate) checked in as BENCH_mining.json. Takes ~10 minutes;
# see DESIGN.md "Counting data layout".
bench:
	go run ./cmd/flowbench -micro -quiet -micro-out BENCH_mining.json

# Regenerate the serving latency microbenchmark in results/. The results
# path must be absolute: go test runs with the package directory as CWD.
bench-serve:
	FLOWSERVE_RESULTS=$(CURDIR)/results/serve_latency.json go test ./internal/server -run ServeLatency -v
	go test ./internal/server -bench BenchmarkCell -run '^$$'

# Regenerate the snapshot-codec benchmark suite (v1 gob vs v2 columnar)
# checked in as BENCH_persist.json. See DESIGN.md "Snapshot format v2".
bench-persist:
	go run ./cmd/flowbench -persist -quiet -persist-out BENCH_persist.json

# Regenerate the incremental-maintenance benchmark suite (1% batch delta
# vs full rebuild) checked in as BENCH_incr.json. See DESIGN.md
# "Incremental maintenance".
bench-incr:
	go run ./cmd/flowbench -incr -quiet -incr-out BENCH_incr.json

# Regenerate the ingest write-path benchmark suite (group commit vs
# serialized appends, reader tail latency under write load, restricted
# exception re-mine) checked in as BENCH_ingest.json. See DESIGN.md
# "Ingest write path".
bench-ingest:
	go run ./cmd/flowbench -ingest -quiet -ingest-out BENCH_ingest.json

# Regenerate the sharded-cluster benchmark suite (router-fronted 1/2/4
# shard fleets vs a single node, multi-process) checked in as
# BENCH_cluster.json. See DESIGN.md "Cluster architecture".
bench-cluster:
	go run ./cmd/flowbench -cluster -quiet -cluster-out BENCH_cluster.json

# Regenerate the OLAP query-algebra benchmark suite (computed vs
# materialized answer latency, materialization-planner budget sweep with
# per-cell digest verification).
bench-olap:
	go run ./cmd/flowbench -olap -quiet -olap-out BENCH_olap.json
