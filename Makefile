# Convenience targets; the source of truth for CI-style verification is
# scripts/check.sh (vet + build + flowlint + race-detector tests + short
# fuzz).

.PHONY: build test check lint fuzz-short bench-serve

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Run the project's static-analysis suite (see cmd/flowlint and DESIGN.md
# "Static analysis & invariants"). Exit status 1 means findings.
lint:
	go run ./cmd/flowlint ./...

# 10-second fuzz pass over the text parsers (cell specs, .fdb records).
fuzz-short:
	go test ./internal/core -run '^$$' -fuzz FuzzParseCellSpec -fuzztime 10s
	go test ./internal/pathdb -run '^$$' -fuzz FuzzRead -fuzztime 10s

# Regenerate the serving latency microbenchmark in results/.
bench-serve:
	FLOWSERVE_RESULTS=results/serve_latency.json go test ./internal/server -run ServeLatency -v
	go test ./internal/server -bench BenchmarkCell -run '^$$'
